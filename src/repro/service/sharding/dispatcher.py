"""The sharded dispatch runtime: one dispatcher per geographic shard.

:class:`ShardedDispatcher` scales the single-process
:class:`~repro.service.LTCDispatcher` by partitioning both campaigns and
worker traffic with a :class:`~repro.service.sharding.ShardPlan`:

* every campaign is pinned to one shard (the grid cell containing its
  reach box, or the overflow shard — see ``plan.py``);
* every arriving worker is routed to the geo shard covering its check-in
  location, plus the overflow shard whenever it has open sessions;
* each shard runs its own :class:`~repro.service.LTCDispatcher` behind a
  :class:`~repro.service.sharding.BoundedArrivalQueue`, drained either
  inline (the ``"serial"`` executor — deterministic, single-threaded),
  by a dedicated thread per shard (the ``"thread"`` executor), or by a
  dedicated **worker process** per shard (the ``"process"`` executor —
  GIL-free routing; see
  :mod:`repro.service.sharding.process_executor`).

**Exactness.**  Because an eligible worker necessarily lies inside the
campaign's reach box, and the reach box lies inside the campaign's cell,
the shard covering the worker's location is the only geo shard that could
route it — so per-session routed sub-streams are *identical* to what the
single-process dispatcher would deliver, in the same per-session order
(each session lives on exactly one shard, whose queue is FIFO).  With a
lossless queue policy the final per-session arrangements are therefore
byte-identical to a single-process run, under both executors; the
differential suite enforces this.  Shedding policies (``drop-oldest`` /
``reject``) trade that guarantee for bounded lag under overload.

**Scaling.**  The single-process dispatcher pays one eligibility probe per
open session per arrival.  Sharding cuts that to the sessions of one shard
(plus overflow), so routing work per arrival drops by roughly the shard
count even single-threaded — that is the honest speedup the benchmark
measures with the ``"serial"`` executor; the ``"thread"`` executor adds
pipeline concurrency across shards on top.

**Fault tolerance.**  A shard failure (any exception escaping its
dispatch attempt, including injected ones — see
:mod:`repro.service.faults`) is resolved by the configured
:class:`~repro.service.recovery.RecoveryPolicy`:

* ``"fail-fast"`` (the default) parks the error (surfaced at the next
  :meth:`drain` / :meth:`stop`), marks the shard *failed*, flushes its
  queue, and discards subsequent arrivals routed to it — every lost
  arrival is counted (:attr:`ShardStatus.arrivals_discarded`);
* ``"restart"`` rebuilds the shard's dispatcher by replaying its
  :class:`~repro.service.recovery.ArrivalJournal` — byte-identical by
  the same FIFO argument as above, so a lossless run *with mid-stream
  crashes* still matches the single-process oracle (the chaos
  differential suite enforces this) — subject to a per-shard restart
  budget and deterministic backoff;
* ``"quarantine"`` rebuilds the shard's sessions once (same replay) and
  migrates them to the overflow shard; the geo shard stops serving and
  its subsequent traffic is discarded (counted).

Journals are kept exactly when the policy can need a replay, so
``fail-fast`` pays zero journaling overhead
(``benchmarks/bench_resilience.py`` prices the rest).
"""

from __future__ import annotations

import threading
import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.algorithms.base import Solver, SolveResult
from repro.algorithms.spec import SolverSpecLike
from repro.core.arrangement import Assignment
from repro.core.instance import LTCInstance
from repro.core.task import Task
from repro.core.worker import Worker
from repro.geo.bbox import BoundingBox
from repro.service.dispatcher import (
    DuplicateSessionError,
    LTCDispatcher,
    SessionStatus,
    UnknownSessionError,
)
from repro.service.faults import FaultInjector, FaultPlan, TransientSolverError
from repro.service.metrics import DispatcherMetrics
from repro.service.recovery import (
    ArrivalJournal,
    RecoveryEvent,
    RecoveryPolicy,
    ShardSupervisor,
)
from repro.service.sharding.plan import ShardPlan, tasks_reach_bounds
from repro.service.sharding.process_executor import (
    ProcessShardClient,
    ShardProcessChannel,
    WorkerShardConfig,
    process_executor_available,
    split_journal_entries,
)
from repro.service.sharding.queueing import BoundedArrivalQueue

#: The accepted executor names.
EXECUTORS = ("serial", "thread", "process")

#: Shard lifecycle states, in the order a shard can move through them.
SHARD_STATES: Tuple[str, ...] = ("live", "recovering", "quarantined", "failed")

#: States in which a shard no longer accepts or processes traffic.
_INACTIVE_STATES = ("quarantined", "failed")


class ShardAffinityError(ValueError):
    """A campaign (or mid-stream task batch) does not fit its shard's cell."""


@dataclass(frozen=True)
class ShardStatus:
    """One shard's state as reported by :meth:`ShardedDispatcher.shard_status`."""

    shard_id: int
    #: The grid cell this shard covers; ``None`` for the overflow shard.
    cell: Optional[BoundingBox]
    session_ids: List[str]
    metrics: DispatcherMetrics
    queue_depth: int
    arrivals_accepted: int
    arrivals_shed: int
    arrivals_processed: int
    #: Lifecycle state, one of :data:`SHARD_STATES`.
    state: str = "live"
    #: Restarts this shard has consumed (``on_shard_failure="restart"``).
    restarts: int = 0
    #: ``repr`` of the shard's most recent failure, if any.
    last_error: Optional[str] = None
    #: Arrivals lost to the failure path (queue flushes on shard death plus
    #: arrivals routed to a dead shard) — distinct from backpressure
    #: ``arrivals_shed``.
    arrivals_discarded: int = 0
    #: Entries in the shard's recovery journal (0 when journaling is off).
    journal_entries: int = 0

    @property
    def is_overflow(self) -> bool:
        return self.cell is None


@dataclass
class _ShardRuntime:
    """One shard's dispatcher, queue, lock and (optional) drain thread."""

    shard_id: int
    #: The in-process dispatcher — or, under the ``"process"`` executor, a
    #: :class:`~repro.service.sharding.process_executor.ProcessShardClient`
    #: duck-typing the same surface over a worker process.
    dispatcher: Union[LTCDispatcher, ProcessShardClient]
    queue: BoundedArrivalQueue
    #: Serialises dispatcher access between the drain loop and control-plane
    #: calls (submit/poll/close) arriving from other threads.
    lock: threading.Lock = field(default_factory=threading.Lock)
    thread: Optional[threading.Thread] = None
    #: Condition over ``lock``; the process pump waits on it while the
    #: shard is ``"recovering"`` (``None`` for serial/thread shards).
    cond: Optional[threading.Condition] = None
    #: Per-arrival routing latencies (seconds), recorded when enabled.
    latencies: List[float] = field(default_factory=list)
    error: Optional[BaseException] = None
    #: Lifecycle state, one of :data:`SHARD_STATES`; guarded by ``lock``.
    state: str = "live"
    #: The recovery journal (``None`` when the policy needs no replay).
    journal: Optional[ArrivalJournal] = None
    #: Arrivals lost to the failure path; guarded by ``lock``.
    discarded: int = 0


class ShardedDispatcher:
    """Serves many campaigns from one worker stream across geographic shards.

    Parameters
    ----------
    plan:
        The :class:`~repro.service.sharding.ShardPlan` partitioning the
        region.  Every shard in the plan (geo cells + overflow) gets its
        own :class:`~repro.service.LTCDispatcher`.
    default_solver / candidates / keep_streams / clock:
        Forwarded to every per-shard dispatcher (see
        :class:`~repro.service.LTCDispatcher`); the clock is shared so
        per-shard busy-time metrics are comparable.
    executor:
        ``"serial"`` processes each arrival inline during
        :meth:`feed_worker` (deterministic; the exact-merge configuration),
        ``"thread"`` drains each shard's queue on its own thread,
        ``"process"`` runs each shard's dispatcher in a worker process
        fed over a pipe (same FIFO contract, GIL-free; task snapshots
        cross as shared memory — :mod:`repro.service.sharding.shm`).
        When worker processes are unavailable on the platform,
        ``"process"`` degrades to ``"thread"`` with a
        :class:`RuntimeWarning`.  Process shards cannot host prebuilt
        :class:`~repro.algorithms.base.Solver` objects or ``"stall"``
        faults, and an injected ``clock`` does not reach the workers.
    queue_capacity / queue_policy:
        Bound and backpressure policy of every shard's arrival queue (see
        :class:`~repro.service.sharding.BoundedArrivalQueue`).  Only the
        lossless ``"block"`` policy preserves byte-identity with a
        single-process dispatcher.
    recovery:
        A :class:`~repro.service.recovery.RecoveryPolicy` (or a prebuilt
        :class:`~repro.service.recovery.ShardSupervisor`, e.g. with an
        injected backoff sleep) deciding what a shard failure does.
        Defaults to fail-fast; see the module docstring.
    faults:
        A :class:`~repro.service.faults.FaultPlan` (or prebuilt
        :class:`~repro.service.faults.FaultInjector`) scheduling
        deterministic faults for chaos testing.  ``None`` (the default)
        injects nothing and skips the hook points entirely.
    autostart:
        Start the runtime on construction.  Pass ``False`` to enqueue
        traffic before any processing happens — tests use this to fill
        queues past capacity and trigger shed policies deterministically.
    record_latencies:
        Record one routing latency sample per processed arrival per shard
        (for p50/p99 reporting in the load harness).  Off by default to
        keep memory flat.
    """

    def __init__(
        self,
        plan: ShardPlan,
        default_solver: SolverSpecLike = "AAM",
        executor: str = "serial",
        queue_capacity: int = 1024,
        queue_policy: str = "block",
        keep_streams: bool = False,
        candidates: Optional[str] = None,
        clock: Optional[Callable[[], float]] = None,
        recovery: Union[RecoveryPolicy, ShardSupervisor, None] = None,
        faults: Union[FaultPlan, FaultInjector, None] = None,
        autostart: bool = True,
        record_latencies: bool = False,
    ) -> None:
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of "
                f"{', '.join(EXECUTORS)}"
            )
        if executor == "process" and not process_executor_available():
            warnings.warn(
                "the process executor is unavailable on this platform "
                "(no usable multiprocessing context); degrading to the "
                "thread executor",
                RuntimeWarning,
                stacklevel=2,
            )
            executor = "thread"
        self._plan = plan
        self._executor = executor
        self._clock: Callable[[], float] = (
            clock if clock is not None else time.perf_counter
        )
        self._record_latencies = record_latencies
        self._default_solver = default_solver
        self._keep_streams = keep_streams
        self._candidates_backend = candidates
        if isinstance(recovery, ShardSupervisor):
            self._supervisor = recovery
        else:
            self._supervisor = ShardSupervisor(
                recovery if recovery is not None else RecoveryPolicy()
            )
        self._policy = self._supervisor.policy
        if isinstance(faults, FaultPlan):
            self._injector: Optional[FaultInjector] = faults.injector()
        else:
            self._injector = faults
        if self._injector is not None:
            rogue = set(self._injector.plan.shard_ids) - set(plan.shard_ids)
            if rogue:
                raise ValueError(
                    f"fault plan targets shard(s) {sorted(rogue)} outside the "
                    f"shard plan (0..{plan.overflow_shard})"
                )
            if self._executor == "process" and any(
                spec.kind == "stall" for spec in self._injector.plan.faults
            ):
                raise ValueError(
                    "stall faults are not supported under the process "
                    "executor (the stall gate lives in the parent's drain "
                    "loops); use crash/transient faults, or the "
                    "serial/thread executor"
                )
        self._shards: Dict[int, _ShardRuntime] = {
            shard_id: _ShardRuntime(
                shard_id=shard_id,
                dispatcher=(
                    self._make_client(shard_id)
                    if self._executor == "process"
                    else self._make_dispatcher()
                ),
                queue=BoundedArrivalQueue(queue_capacity, queue_policy),
                journal=ArrivalJournal() if self._policy.journaling else None,
            )
            for shard_id in plan.shard_ids
        }
        if self._executor == "process":
            for runtime in self._shards.values():
                runtime.cond = threading.Condition(runtime.lock)
        self._shard_of_session: Dict[str, int] = {}
        self._auto_id = 0
        self._arrivals_offered = 0
        self._control = threading.Lock()
        #: Signalled (with the control lock) after a quarantine migration
        #: remaps sessions, so control-plane calls racing the migration can
        #: re-resolve instead of spinning.
        self._migrated = threading.Condition(self._control)
        self._fault_metrics = DispatcherMetrics()
        self._recovery_events: List[RecoveryEvent] = []
        self._started = False
        self._stopped = False
        if autostart:
            self.start()

    # ------------------------------------------------------------ lifecycle

    @property
    def plan(self) -> ShardPlan:
        return self._plan

    @property
    def executor(self) -> str:
        return self._executor

    @property
    def started(self) -> bool:
        return self._started

    @property
    def recovery_policy(self) -> RecoveryPolicy:
        return self._policy

    def start(self) -> None:
        """Start processing queued arrivals (idempotent).

        Under the ``"thread"`` executor this launches one drain thread per
        shard; under ``"process"`` one *pump* thread per shard, feeding
        the shard's worker process over its pipe; under ``"serial"`` it
        drains any pre-queued backlog inline and marks the runtime live
        (subsequent :meth:`feed_worker` calls process inline).
        """
        if self._stopped:
            raise RuntimeError("a stopped ShardedDispatcher cannot be restarted")
        if self._started:
            return
        self._started = True
        if self._executor in ("thread", "process"):
            target = (
                self._drain_loop
                if self._executor == "thread"
                else self._process_pump
            )
            for runtime in self._shards.values():
                thread = threading.Thread(
                    target=target,
                    args=(runtime,),
                    name=f"shard-{runtime.shard_id}",
                    daemon=True,
                )
                runtime.thread = thread
                thread.start()
        else:
            for runtime in self._shards.values():
                self._drain_inline(runtime)

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait until every accepted arrival has been processed.

        Under ``"serial"`` any backlog is processed inline first.
        ``timeout`` is a **shared deadline budget** across all shards, not
        a per-shard allowance — the call returns within ``timeout``
        seconds however many shards are behind.  Returns whether every
        queue fully drained in time.  Re-raises the first error a shard
        loop parked (fail-fast failures surface here).
        """
        if not self._started:
            raise RuntimeError("start() the ShardedDispatcher before drain()")
        if self._executor == "serial":
            for runtime in self._shards.values():
                self._drain_inline(runtime)
        deadline = None if timeout is None else time.monotonic() + timeout
        drained = True
        for runtime in self._shards.values():
            if deadline is None:
                drained = runtime.queue.join() and drained
            else:
                remaining = max(0.0, deadline - time.monotonic())
                drained = runtime.queue.join(timeout=remaining) and drained
        self._reraise_shard_errors()
        return drained

    def stop(self, drain: bool = True) -> None:
        """Stop the runtime: optionally drain, close queues, join threads.

        Idempotent and exception-safe: queues are closed and drain threads
        joined even when draining re-raises a parked shard error, so the
        runtime never stays half-alive.  Active fault-injection stalls are
        released first (a stalled shard could never drain).  After
        ``stop()`` the control plane (poll/close/result) keeps working,
        but further arrivals are refused.
        """
        if self._stopped:
            return
        if self._injector is not None:
            self._injector.release_stalls()
        try:
            if drain and self._started:
                self.drain()
        finally:
            self._stopped = True
            for runtime in self._shards.values():
                runtime.queue.close()
            if self._executor in ("thread", "process") and self._started:
                for runtime in self._shards.values():
                    if runtime.thread is not None:
                        runtime.thread.join()
            if self._executor == "process":
                # No further traffic: worker processes shut down as soon
                # as their last session closes (immediately, if none are
                # open) — so ``stop()`` → ``close_all()`` and
                # ``close_all()`` → ``stop()`` both leave zero processes.
                for runtime in self._shards.values():
                    if isinstance(runtime.dispatcher, ProcessShardClient):
                        runtime.dispatcher.mark_stopping()
        self._reraise_shard_errors()

    def _reraise_shard_errors(self) -> None:
        for runtime in self._shards.values():
            if runtime.error is not None:
                error, runtime.error = runtime.error, None
                raise error

    # ------------------------------------------------------------- sessions

    def submit_instance(
        self,
        instance: LTCInstance,
        solver: Union[SolverSpecLike, Solver, None] = None,
        session_id: Optional[str] = None,
        shard_id: Optional[int] = None,
    ) -> str:
        """Open a session for ``instance`` on its shard; return the id.

        The shard is chosen by the plan's reach-box containment rule
        (:meth:`~repro.service.sharding.ShardPlan.shard_for_instance`)
        unless ``shard_id`` overrides it — an override naming a geo shard
        is validated against the campaign's reach box
        (:class:`ShardAffinityError` if it does not fit that cell), the
        overflow shard accepts anything.  Session ids are unique across
        the *whole* runtime, not per shard.

        A plan-chosen shard that is quarantined or failed falls back to
        the overflow shard; an explicit override naming a dead shard
        raises :class:`RuntimeError` instead.
        """
        with self._control:
            if session_id is None:
                self._auto_id += 1
                session_id = f"session-{self._auto_id}"
            if session_id in self._shard_of_session:
                raise DuplicateSessionError(
                    f"session id {session_id!r} is already in use"
                )
            explicit = shard_id is not None
            if shard_id is None:
                shard_id = self._plan.shard_for_instance(instance)
            else:
                if shard_id not in self._shards:
                    raise ValueError(
                        f"shard id {shard_id} is not in the plan "
                        f"(0..{self._plan.overflow_shard})"
                    )
                cell = self._plan.cell(shard_id)
                if cell is not None:
                    reach = tasks_reach_bounds(instance)
                    if reach is None or not self._box_within(reach, cell):
                        raise ShardAffinityError(
                            f"campaign reach box does not fit shard {shard_id}'s "
                            "cell; pin it to the overflow shard instead"
                        )
            if not self._try_open(self._shards[shard_id], instance, solver,
                                  session_id):
                if explicit:
                    raise RuntimeError(
                        f"shard {shard_id} is "
                        f"{self._shards[shard_id].state}; it accepts no new "
                        "sessions"
                    )
                shard_id = self._plan.overflow_shard
                if not self._try_open(self._shards[shard_id], instance, solver,
                                      session_id):
                    raise RuntimeError(
                        "the overflow shard is "
                        f"{self._shards[shard_id].state}; no shard can serve "
                        "this campaign"
                    )
            self._shard_of_session[session_id] = shard_id
            return session_id

    def _try_open(
        self,
        runtime: _ShardRuntime,
        instance: LTCInstance,
        solver: Union[SolverSpecLike, Solver, None],
        session_id: str,
    ) -> bool:
        """Open a session on ``runtime`` unless it stopped serving."""
        with runtime.lock:
            if runtime.state in _INACTIVE_STATES:
                return False
            runtime.dispatcher.submit_instance(
                instance, solver=solver, session_id=session_id
            )
            if runtime.journal is not None:
                prebuilt = isinstance(solver, Solver)
                runtime.journal.record_open(
                    session_id,
                    instance,
                    None if prebuilt else solver,
                    replayable=not prebuilt,
                )
            return True

    def submit_tasks(self, session_id: str, tasks: Sequence[Task]) -> str:
        """Post additional tasks to an open session mid-stream.

        For a session pinned to a geo shard the new tasks' reach box must
        still fit the shard's cell — sessions are never migrated live;
        :class:`ShardAffinityError` otherwise, with the dispatcher state
        untouched.  Overflow-shard sessions accept any tasks.
        """
        tasks = list(tasks)
        with self._locked_session_runtime(session_id) as runtime:
            cell = self._plan.cell(runtime.shard_id)
            if cell is not None and tasks:
                instance = runtime.dispatcher.instance_of(session_id)
                reach = tasks_reach_bounds(instance, tasks)
                if reach is None or not self._box_within(reach, cell):
                    raise ShardAffinityError(
                        f"mid-stream tasks for session {session_id!r} reach "
                        f"outside shard {runtime.shard_id}'s cell; sessions "
                        "are pinned — open a new campaign (or use the "
                        "overflow shard) instead"
                    )
            runtime.dispatcher.submit_tasks(session_id, tasks)
            if runtime.journal is not None:
                runtime.journal.record_tasks(session_id, tasks)
            return session_id

    def expire_tasks(self, session_id: str, task_ids: Sequence[int]) -> List[int]:
        """Expire overdue tasks in an open session (the TTL sweep)."""
        with self._locked_session_runtime(session_id) as runtime:
            expired = runtime.dispatcher.expire_tasks(session_id, task_ids)
            # Journal the honest abandonments only: replaying them at the
            # same stream position abandons exactly the same tasks, and an
            # empty sweep is a no-op not worth an entry.
            if expired and runtime.journal is not None:
                runtime.journal.record_expire(session_id, expired)
            return expired

    @property
    def session_ids(self) -> List[str]:
        """Ids of all open sessions, in submission order across shards."""
        return list(self._shard_of_session)

    def shard_of(self, session_id: str) -> int:
        """The shard a session is pinned to."""
        return self._runtime_for(session_id).shard_id

    @property
    def all_complete(self) -> bool:
        """Whether every open session has completed (vacuously true if none)."""
        return all(
            runtime.dispatcher.all_complete for runtime in self._shards.values()
        )

    # ------------------------------------------------------------ streaming

    def feed_worker(self, worker: Worker) -> Optional[Dict[str, List[Assignment]]]:
        """Route one arrival to its geo shard (and overflow, if populated).

        Under the ``"serial"`` executor (started) the arrival is processed
        inline and the merged per-session deliveries are returned, exactly
        like :meth:`LTCDispatcher.feed_worker` (deliveries triggered by a
        crash-recovery replay are an exception: they surface via
        :meth:`poll` / :meth:`close`, not the return value).  Under
        ``"thread"`` — or before :meth:`start` — the arrival is only
        enqueued and ``None`` is returned.  Arrivals routed to a
        quarantined or failed shard are discarded and counted
        (:attr:`ShardStatus.arrivals_discarded`).
        """
        if self._stopped:
            raise RuntimeError("the ShardedDispatcher is stopped")
        self._arrivals_offered += 1
        geo = self._shards[self._plan.shard_of_point(worker.location)]
        overflow = self._shards[self._plan.overflow_shard]
        candidates = [geo]
        if overflow.dispatcher.session_ids and overflow is not geo:
            candidates.append(overflow)
        targets = []
        for runtime in candidates:
            if runtime.state in _INACTIVE_STATES:
                with runtime.lock:
                    runtime.discarded += 1
                continue
            targets.append(runtime)
        for runtime in targets:
            runtime.queue.put(worker)
        if self._executor == "serial" and self._started:
            deliveries: Dict[str, List[Assignment]] = {}
            for runtime in targets:
                deliveries.update(self._drain_inline(runtime))
            return deliveries
        return None

    def feed_stream(self, workers, stop_when_all_complete: bool = False) -> int:
        """Feed a whole merged stream; return how many arrivals were offered.

        Early stop on ``all_complete`` is off by default: under the
        threaded executor completion lags the queues, so checking it
        per-arrival is racy; enable it only for serial runs that mirror
        :meth:`LTCDispatcher.feed_stream` semantics.
        """
        offered = 0
        for worker in workers:
            if stop_when_all_complete and self.all_complete:
                break
            self.feed_worker(worker)
            offered += 1
        return offered

    @property
    def arrivals_offered(self) -> int:
        """Arrivals offered to :meth:`feed_worker` (before any fan-out).

        The honest denominator for aggregate rates: a worker fanned out to
        its geo shard *and* the overflow shard counts once here but twice
        in the aggregate ``workers_fed``.
        """
        return self._arrivals_offered

    # ----------------------------------------------------------- inspection

    def poll(self) -> Dict[str, SessionStatus]:
        """Progress snapshots of every open session, across all shards."""
        statuses: Dict[str, SessionStatus] = {}
        for runtime in self._shards.values():
            with runtime.lock:
                statuses.update(runtime.dispatcher.poll())
        return statuses

    def shard_status(self) -> List[ShardStatus]:
        """Per-shard state: lifecycle, sessions, metrics, queue counters."""
        statuses: List[ShardStatus] = []
        for shard_id, runtime in sorted(self._shards.items()):
            with runtime.lock:
                metrics = DispatcherMetrics.merged([runtime.dispatcher.metrics])
                session_ids = runtime.dispatcher.session_ids
                state = runtime.state
                discarded = runtime.discarded
                journal_entries = (
                    len(runtime.journal) if runtime.journal is not None else 0
                )
            statuses.append(
                ShardStatus(
                    shard_id=shard_id,
                    cell=self._plan.cell(shard_id),
                    session_ids=session_ids,
                    metrics=metrics,
                    queue_depth=runtime.queue.size,
                    arrivals_accepted=runtime.queue.accepted,
                    arrivals_shed=runtime.queue.shed,
                    arrivals_processed=runtime.queue.processed,
                    state=state,
                    restarts=self._supervisor.restarts(shard_id),
                    last_error=self._supervisor.last_error(shard_id),
                    arrivals_discarded=discarded,
                    journal_entries=journal_entries,
                )
            )
        return statuses

    @property
    def metrics(self) -> DispatcherMetrics:
        """Aggregate roll-up of every shard's counters (a fresh object).

        Counters sum across shards; note ``workers_fed`` counts per-shard
        deliveries, so divide by :attr:`arrivals_offered` (not
        ``workers_fed``) for rates over offered traffic whenever the
        overflow shard is populated.  Recovery counters (``restarts``,
        ``replayed_arrivals``, ``quarantined_sessions``) are folded in
        from the runtime's own fault accounting.
        """
        parts = []
        for runtime in self._shards.values():
            with runtime.lock:
                parts.append(DispatcherMetrics.merged([runtime.dispatcher.metrics]))
        with self._control:
            parts.append(DispatcherMetrics.merged([self._fault_metrics]))
        return DispatcherMetrics.merged(parts)

    @property
    def shed_total(self) -> int:
        """Arrivals lost to backpressure across all shard queues."""
        return sum(runtime.queue.shed for runtime in self._shards.values())

    @property
    def discarded_total(self) -> int:
        """Arrivals lost to the failure path across all shards."""
        total = 0
        for runtime in self._shards.values():
            with runtime.lock:
                total += runtime.discarded
        return total

    @property
    def recovery_events(self) -> List[RecoveryEvent]:
        """Completed recovery actions, in completion order (a copy)."""
        with self._control:
            return list(self._recovery_events)

    def routing_latencies(self) -> Dict[int, List[float]]:
        """Per-shard routing latency samples (``record_latencies=True`` only)."""
        if not self._record_latencies:
            raise RuntimeError(
                "latency samples are not recorded; build the ShardedDispatcher "
                "with record_latencies=True"
            )
        return {
            shard_id: list(runtime.latencies)
            for shard_id, runtime in sorted(self._shards.items())
        }

    def routed_stream(self, session_id: str) -> List[Worker]:
        """A session's re-indexed sub-stream (``keep_streams=True`` only)."""
        with self._locked_session_runtime(session_id) as runtime:
            return runtime.dispatcher.routed_stream(session_id)

    # -------------------------------------------------------------- closing

    def close(self, session_id: str) -> SolveResult:
        """Finalise one session, remove it, and return its solve result."""
        with self._locked_session_runtime(session_id) as runtime:
            result = runtime.dispatcher.close(session_id)
            if runtime.journal is not None:
                runtime.journal.record_close(session_id)
        with self._control:
            del self._shard_of_session[session_id]
        return result

    def close_all(self) -> Dict[str, SolveResult]:
        """Finalise every open session, in submission order across shards."""
        return {
            session_id: self.close(session_id)
            for session_id in list(self._shard_of_session)
        }

    # ------------------------------------------------------------ internals

    def _make_dispatcher(self) -> LTCDispatcher:
        return LTCDispatcher(
            default_solver=self._default_solver,
            keep_streams=self._keep_streams,
            candidates=self._candidates_backend,
            clock=self._clock,
        )

    def _make_client(self, shard_id: int) -> ProcessShardClient:
        """Build one shard's worker-process client (``"process"`` executor).

        The shard's fault schedule ships to the worker, which fires it
        against its own live-arrival ordinals; an injected clock is *not*
        shipped (worker dispatchers use the default clock — their
        ``busy_seconds`` is measured in the worker, where the work runs).
        """
        specs = ()
        if self._injector is not None:
            specs = tuple(self._injector.plan.for_shard(shard_id))
        config = WorkerShardConfig(
            shard_id=shard_id,
            default_solver=self._default_solver,
            keep_streams=self._keep_streams,
            candidates=self._candidates_backend,
            transient_retries=self._policy.transient_retries,
            fault_specs=specs,
        )
        return ProcessShardClient(
            config,
            on_done=lambda latency, sid=shard_id: self._on_worker_done(
                sid, latency
            ),
            on_death=lambda channel, error, sid=shard_id: (
                self._on_process_failure(sid, channel, error)
            ),
        )

    def _on_worker_done(self, shard_id: int, latency: Optional[float]) -> None:
        """One arrival acked by a worker process (its receiver thread)."""
        runtime = self._shards[shard_id]
        if self._record_latencies and latency is not None:
            runtime.latencies.append(latency)
        runtime.queue.task_done()

    def _runtime_for(self, session_id: str) -> _ShardRuntime:
        try:
            shard_id = self._shard_of_session[session_id]
        except KeyError:
            known = ", ".join(self._shard_of_session) or "<none>"
            raise UnknownSessionError(
                f"unknown session {session_id!r}; open sessions: {known}"
            ) from None
        return self._shards[shard_id]

    @contextmanager
    def _locked_session_runtime(self, session_id: str) -> Iterator[_ShardRuntime]:
        """Resolve a session's runtime and hold its lock, migration-safe.

        A quarantine migration can move the session to the overflow shard
        between the map lookup and the lock acquisition; re-resolve until
        the mapping is stable under the lock (waiting out an in-flight
        migration on the control condition rather than spinning).
        """
        while True:
            runtime = self._runtime_for(session_id)
            with runtime.lock:
                if (
                    runtime.state != "quarantined"
                    and self._shard_of_session.get(session_id) == runtime.shard_id
                ):
                    yield runtime
                    return
            with self._migrated:
                self._migrated.wait_for(
                    lambda: self._shard_of_session.get(session_id)
                    != runtime.shard_id,
                    timeout=1.0,
                )

    @staticmethod
    def _box_within(inner: BoundingBox, outer: BoundingBox) -> bool:
        return (
            outer.min_x <= inner.min_x
            and outer.min_y <= inner.min_y
            and inner.max_x <= outer.max_x
            and inner.max_y <= outer.max_y
        )

    def _process(self, runtime: _ShardRuntime, worker: Worker):
        started = self._clock()
        with runtime.lock:
            # Write-ahead: journal the arrival *before* the dispatch
            # attempt, so the arrival in flight when the shard crashes is
            # replayed rather than lost.
            if runtime.journal is not None:
                runtime.journal.record_worker(worker)
            if self._injector is None:
                deliveries = runtime.dispatcher.feed_worker(worker)
            else:
                deliveries = self._feed_with_faults(runtime, worker)
        if self._record_latencies:
            runtime.latencies.append(self._clock() - started)
        return deliveries

    def _feed_with_faults(self, runtime: _ShardRuntime, worker: Worker):
        """The injected dispatch attempt, with bounded in-place retry."""
        ordinal = self._injector.begin_arrival(runtime.shard_id)
        attempt = 0
        while True:
            try:
                self._injector.raise_for(runtime.shard_id, ordinal, attempt)
                return runtime.dispatcher.feed_worker(worker)
            except TransientSolverError:
                attempt += 1
                if attempt > self._policy.transient_retries:
                    raise

    def _drain_inline(self, runtime: _ShardRuntime) -> Dict[str, List[Assignment]]:
        """Process a shard's queued backlog on the calling thread."""
        deliveries: Dict[str, List[Assignment]] = {}
        while True:
            if self._injector is not None and self._injector.stall_active(
                runtime.shard_id, runtime.queue.processed
            ):
                # A stalled serial shard just stops consuming; the backlog
                # (and any backpressure) becomes observable immediately.
                return deliveries
            worker = runtime.queue.get(timeout=0.0)
            if worker is None:
                return deliveries
            if runtime.state in _INACTIVE_STATES:
                with runtime.lock:
                    runtime.discarded += 1
                runtime.queue.task_done()
                continue
            try:
                deliveries.update(self._process(runtime, worker))
            except BaseException as exc:  # noqa: BLE001 - resolved by policy
                self._handle_shard_failure(runtime, exc)
            finally:
                runtime.queue.task_done()

    def _drain_loop(self, runtime: _ShardRuntime) -> None:
        """The per-shard thread body: drain until the queue closes."""
        while True:
            if self._injector is not None:
                self._injector.wait_stall_release(
                    runtime.shard_id, runtime.queue.processed
                )
            worker = runtime.queue.get()
            if worker is None:
                return
            if runtime.state in _INACTIVE_STATES:
                with runtime.lock:
                    runtime.discarded += 1
                runtime.queue.task_done()
                continue
            try:
                self._process(runtime, worker)
            except BaseException as exc:  # noqa: BLE001 - resolved by policy
                try:
                    self._handle_shard_failure(runtime, exc)
                except BaseException as failure:  # noqa: BLE001 - parked
                    if runtime.error is None:
                        runtime.error = failure
            finally:
                runtime.queue.task_done()

    def _process_pump(self, runtime: _ShardRuntime) -> None:
        """The per-shard pump body (``"process"`` executor).

        Pulls arrivals off the shard's queue and ships them down the
        worker's pipe.  ``task_done`` accounting is split: an arrival the
        worker acks is credited by :meth:`_on_worker_done`; one the pump
        discards (inactive shard, or a failed send with no journal to
        re-deliver from) is credited here; a **journaled** arrival is
        owned by the worker/death flow from the moment it is recorded —
        it is acked by a worker (possibly after a restart re-sends it),
        or credited as part of the terminal suffix by
        :meth:`_handle_process_failure`.  Journal appends and pipe sends
        share the runtime lock, so journal order equals pipe order
        equals the worker's apply order.
        """
        while True:
            worker = runtime.queue.get()
            if worker is None:
                return
            done_here = True
            try:
                with runtime.lock:
                    while runtime.state == "recovering":
                        runtime.cond.wait()
                    if runtime.state in _INACTIVE_STATES:
                        runtime.discarded += 1
                    elif runtime.journal is not None:
                        # Write-ahead, as in _process(): the arrival in
                        # flight when the worker dies is replayed or
                        # re-sent, not lost.  A failed send leaves it
                        # journaled for the next recovery's split.
                        runtime.journal.record_worker(worker)
                        runtime.dispatcher.send_worker(worker)
                        done_here = False
                    elif runtime.dispatcher.send_worker(worker):
                        done_here = False
                    else:
                        # No journal to re-deliver from: the arrival
                        # dies with the worker.
                        runtime.discarded += 1
            finally:
                if done_here:
                    runtime.queue.task_done()

    # ------------------------------------------------------------- recovery

    def _handle_shard_failure(
        self, runtime: _ShardRuntime, error: BaseException
    ) -> None:
        """Resolve one shard failure per the recovery policy.

        Returns normally when the shard was recovered (restarted or
        quarantined); raises the terminal error when the shard fails for
        good (the serial caller propagates it, the thread loop parks it).
        """
        current = error
        while True:
            action = self._supervisor.decide(runtime.shard_id, current)
            if (
                action == "quarantine"
                and runtime.shard_id == self._plan.overflow_shard
            ):
                # The overflow shard has nowhere to migrate to.
                action = "fail"
            if action == "restart" and runtime.journal is not None:
                started = self._clock()
                self._supervisor.backoff(runtime.shard_id)
                with runtime.lock:
                    runtime.state = "recovering"
                    fresh = self._make_dispatcher()
                    try:
                        replayed = runtime.journal.replay(fresh)
                    except BaseException as exc:  # noqa: BLE001 - escalates
                        runtime.state = "failed"
                        current = exc
                        continue
                    # The dead dispatcher's counters are replaced, not
                    # added to: the replay regenerated them exactly.
                    runtime.dispatcher = fresh
                    runtime.state = "live"
                with self._control:
                    self._fault_metrics.restarts += 1
                    self._fault_metrics.replayed_arrivals += replayed
                    self._recovery_events.append(
                        RecoveryEvent(
                            shard_id=runtime.shard_id,
                            action="restart",
                            replayed_arrivals=replayed,
                            duration_seconds=self._clock() - started,
                            error=repr(current),
                        )
                    )
                return
            if action == "quarantine" and runtime.journal is not None:
                try:
                    self._quarantine(runtime, current)
                    return
                except BaseException as exc:  # noqa: BLE001 - falls to fail
                    current = exc
            with runtime.lock:
                runtime.state = "failed"
                runtime.discarded += runtime.queue.flush()
            raise current

    def _quarantine(self, runtime: _ShardRuntime, error: BaseException) -> None:
        """Rebuild a failed shard's sessions and migrate them to overflow."""
        started = self._clock()
        overflow = self._shards[self._plan.overflow_shard]
        with runtime.lock:
            runtime.state = "quarantined"
            scratch = self._make_dispatcher()
            replayed = runtime.journal.replay(scratch)
            migrated = scratch.session_ids
            # Discard the dead dispatcher (and its journal) wholesale: the
            # shard's history now lives in `scratch`, about to move to
            # overflow; an empty husk keeps poll()/metrics from
            # double-reporting the migrated sessions.
            runtime.dispatcher = self._make_dispatcher()
            runtime.journal = ArrivalJournal()
            runtime.discarded += runtime.queue.flush()
        with self._migrated:  # acquires the control lock
            with overflow.lock:
                overflow.dispatcher.adopt_sessions(scratch)
                if overflow.journal is not None:
                    # The adopted sessions' history is not in overflow's
                    # journal, so a later overflow replay cannot be exact.
                    overflow.journal.mark_unreplayable(
                        f"adopted {len(migrated)} session(s) from "
                        f"quarantined shard {runtime.shard_id}"
                    )
            for session_id in migrated:
                self._shard_of_session[session_id] = overflow.shard_id
            self._fault_metrics.quarantined_sessions += len(migrated)
            self._fault_metrics.replayed_arrivals += replayed
            self._recovery_events.append(
                RecoveryEvent(
                    shard_id=runtime.shard_id,
                    action="quarantine",
                    replayed_arrivals=replayed,
                    duration_seconds=self._clock() - started,
                    error=repr(error),
                )
            )
            self._migrated.notify_all()

    # ---------------------------------------------------- process recovery

    def _on_process_failure(
        self,
        shard_id: int,
        channel: ShardProcessChannel,
        error: BaseException,
    ) -> None:
        """A shard's worker process died (runs on its receiver thread).

        Fixes the death's position in the arrival stream first: the
        *cut* is the absolute ordinal the dead incarnation consumed
        through (reported in its failure frame, or reconstructed from
        acks after a hard kill).  Recovery replays the journal up to the
        cut and re-sends the rest live, so the only queue credit issued
        here is for the arrival the worker died on — journaled, part of
        the replay prefix, never acked.  Then the failure resolves
        exactly like a thread-shard crash; a terminal failure parks on
        the runtime for the next drain()/stop().
        """
        runtime = self._shards[shard_id]
        framed = channel.consumed_ordinal is not None
        if runtime.journal is not None:
            cut = runtime.dispatcher.death_ordinal(channel)
            if framed:
                runtime.queue.task_done()
        else:
            # No journal: nothing can be replayed or re-sent, so every
            # arrival shipped down the dead pipe is settled here (the one
            # the worker died on was consumed; the rest are lost).
            cut = None
            unacked = channel.take_unacked()
            with runtime.lock:
                runtime.discarded += unacked - (1 if framed else 0)
            for _ in range(unacked):
                runtime.queue.task_done()
        try:
            self._handle_process_failure(runtime, error, cut)
        except BaseException as failure:  # noqa: BLE001 - parked
            if runtime.error is None:
                runtime.error = failure

    def _handle_process_failure(
        self,
        runtime: _ShardRuntime,
        error: BaseException,
        cut: Optional[int],
    ) -> None:
        """:meth:`_handle_shard_failure`, for a dead worker process.

        Same decide-loop and accounting; the difference is mechanical —
        "replay the journal into a fresh dispatcher" becomes "spawn a
        fresh worker process, replay the journal up to the death's
        ``cut`` down its pipe, and re-send the never-processed suffix
        live" — and the pump is parked on the shard's condition while
        the state is ``"recovering"``.  When the shard fails terminally
        instead, the suffix arrivals are settled here: they can no
        longer be delivered, so they are discarded and their queue
        credits issued.
        """
        current = error
        while True:
            action = self._supervisor.decide(runtime.shard_id, current)
            if (
                action == "quarantine"
                and runtime.shard_id == self._plan.overflow_shard
            ):
                action = "fail"
            if action == "restart" and runtime.journal is not None:
                started = self._clock()
                self._supervisor.backoff(runtime.shard_id)
                with runtime.lock:
                    runtime.state = "recovering"
                    try:
                        runtime.journal.check_replayable()
                        replayed = runtime.dispatcher.respawn(
                            runtime.journal.entries(), cut
                        )
                    except BaseException as exc:  # noqa: BLE001 - escalates
                        runtime.state = "failed"
                        runtime.cond.notify_all()
                        current = exc
                        continue
                    runtime.state = "live"
                    runtime.cond.notify_all()
                with self._control:
                    self._fault_metrics.restarts += 1
                    self._fault_metrics.replayed_arrivals += replayed
                    self._recovery_events.append(
                        RecoveryEvent(
                            shard_id=runtime.shard_id,
                            action="restart",
                            replayed_arrivals=replayed,
                            duration_seconds=self._clock() - started,
                            error=repr(current),
                        )
                    )
                return
            if action == "quarantine" and runtime.journal is not None:
                try:
                    self._quarantine_process(runtime, current, cut)
                    return
                except BaseException as exc:  # noqa: BLE001 - falls to fail
                    current = exc
            with runtime.lock:
                runtime.state = "failed"
                suffix = 0
                if runtime.journal is not None and cut is not None:
                    suffix = runtime.journal.worker_count - cut
                for _ in range(suffix):
                    runtime.queue.task_done()
                runtime.discarded += suffix + runtime.queue.flush()
                if runtime.cond is not None:
                    runtime.cond.notify_all()
            raise current

    def _quarantine_process(
        self,
        runtime: _ShardRuntime,
        error: BaseException,
        cut: Optional[int],
    ) -> None:
        """:meth:`_quarantine`, for a dead worker process.

        The rebuild-by-replay happens inside the *overflow* shard's
        worker (the ``("adopt", ...)`` message): a scratch dispatcher is
        replayed there and its sessions adopted, so the migrated state
        never transits the parent as live objects.  The dead shard keeps
        an empty in-process husk so poll()/metrics/status stay uniform.

        Only the journal prefix up to the death's ``cut`` is adopted —
        the suffix arrivals were in the pipe, never processed, which is
        the thread executor's "still in the dead shard's queue" case:
        they are discarded (and counted), exactly as the queue flush
        discards the backlog there.
        """
        started = self._clock()
        overflow = self._shards[self._plan.overflow_shard]
        with runtime.lock:
            runtime.state = "quarantined"
            runtime.cond.notify_all()
            runtime.journal.check_replayable()
            replayed = (
                runtime.journal.worker_count if cut is None else cut
            )
            entries, resend = split_journal_entries(
                runtime.journal.entries(), replayed
            )
            for _ in range(len(resend)):
                runtime.queue.task_done()
            runtime.discarded += len(resend)
            client = runtime.dispatcher
            instances = {
                session_id: client.instance_of(session_id)
                for session_id in client.session_ids
            }
            client.retire()
            runtime.dispatcher = self._make_dispatcher()
            runtime.journal = ArrivalJournal()
            runtime.discarded += runtime.queue.flush()
        with self._migrated:  # acquires the control lock
            with overflow.lock:
                adopted = overflow.dispatcher.adopt_entries(entries, instances)
                if overflow.journal is not None:
                    overflow.journal.mark_unreplayable(
                        f"adopted {len(adopted)} session(s) from "
                        f"quarantined shard {runtime.shard_id}"
                    )
            for session_id in adopted:
                self._shard_of_session[session_id] = overflow.shard_id
            self._fault_metrics.quarantined_sessions += len(adopted)
            self._fault_metrics.replayed_arrivals += replayed
            self._recovery_events.append(
                RecoveryEvent(
                    shard_id=runtime.shard_id,
                    action="quarantine",
                    replayed_arrivals=replayed,
                    duration_seconds=self._clock() - started,
                    error=repr(error),
                )
            )
            self._migrated.notify_all()
