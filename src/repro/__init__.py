"""Latency-oriented Task Completion (LTC) via Spatial Crowdsourcing.

A full reproduction of Zeng, Tong, Chen, Zhou — "Latency-oriented Task
Completion via Spatial Crowdsourcing", ICDE 2018.

The public API re-exported here covers the common workflow.  Solvers are
built declaratively from parameterized specs:

>>> from repro import SolverSpec, SyntheticConfig, build_solver, generate_synthetic_instance
>>> instance = generate_synthetic_instance(SyntheticConfig(
...     num_tasks=30, num_workers=600, grid_size=150, seed=7))
>>> result = build_solver("AAM").solve(instance)
>>> result.completed, result.max_latency  # doctest: +SKIP
(True, 213)
>>> mcf = build_solver(SolverSpec.parse("MCF-LTC?batch_multiplier=2.0"))

Every solver — online or offline — can also be driven incrementally through
the uniform :class:`~repro.core.session.Session` protocol, which is what the
simulation engine, the experiment runner and the service layer use:

>>> session = build_solver("LAF").open_session(instance)
>>> for worker in instance.workers:  # doctest: +SKIP
...     assignments = session.on_worker(worker)
...     if session.is_complete:
...         break
>>> session.result().max_latency  # doctest: +SKIP
247

Sub-packages:

* ``repro.core`` — tasks, workers, accuracy functions, arrangements,
  offline/online problem instances, the incremental ``Session`` protocol.
* ``repro.algorithms`` — MCF-LTC, LAF, AAM, the paper's baselines, bounds,
  the ``SolverSpec`` registry.
* ``repro.flow`` / ``repro.geo`` / ``repro.structures`` — the substrates
  (min-cost flow, computational geometry, heaps).
* ``repro.quality`` — weighted majority voting and the Hoeffding guarantee.
* ``repro.datagen`` — synthetic (Table IV) and Foursquare-like (Table V)
  workload generators.
* ``repro.simulation`` / ``repro.experiments`` — measurement harness and the
  per-figure experiment definitions.
* ``repro.service`` — the multi-instance dispatch layer
  (:class:`~repro.service.LTCDispatcher`) serving many concurrent sessions
  from one merged worker stream.
"""

from repro._version import __version__
from repro.core import (
    Arrangement,
    Assignment,
    CandidateFinder,
    LTCInstance,
    Session,
    SessionSnapshot,
    SessionStateError,
    SigmoidDistanceAccuracy,
    Task,
    Worker,
    WorkerStream,
    quality_threshold,
)
from repro.algorithms import (
    AAMSolver,
    BaseOffSolver,
    ExactSolver,
    LAFSolver,
    MCFLTCSolver,
    RandomOnlineSolver,
    SolveResult,
    SolverSpec,
    available_solvers,
    build_solver,
    get_solver,
    latency_lower_bound,
    latency_upper_bound,
    register_solver,
)
from repro.service import (
    DispatcherMetrics,
    LTCDispatcher,
    SessionStatus,
)
from repro.datagen import (
    CheckinCityConfig,
    NEW_YORK,
    TOKYO,
    NormalAccuracy,
    SyntheticConfig,
    UniformAccuracy,
    generate_checkin_instance,
    generate_synthetic_instance,
)
from repro.simulation import (
    ExperimentRunner,
    OnlineSimulation,
    ResultTable,
    measure_solver,
)
from repro.experiments import (
    EXPERIMENTS,
    get_experiment,
    list_experiments,
    run_experiment,
    render_table,
    write_series_csv,
    export_json,
)
from repro.analysis import (
    compute_instance_stats,
    empirical_ratio_to_lower_bound,
    empirical_ratios_vs_exact,
)

__all__ = [
    "__version__",
    # core
    "Task",
    "Worker",
    "LTCInstance",
    "WorkerStream",
    "Arrangement",
    "Assignment",
    "CandidateFinder",
    "SigmoidDistanceAccuracy",
    "quality_threshold",
    "Session",
    "SessionSnapshot",
    "SessionStateError",
    # algorithms
    "SolveResult",
    "SolverSpec",
    "MCFLTCSolver",
    "LAFSolver",
    "AAMSolver",
    "BaseOffSolver",
    "RandomOnlineSolver",
    "ExactSolver",
    "build_solver",
    "get_solver",
    "register_solver",
    "available_solvers",
    "latency_lower_bound",
    "latency_upper_bound",
    # service
    "LTCDispatcher",
    "SessionStatus",
    "DispatcherMetrics",
    # data generation
    "SyntheticConfig",
    "generate_synthetic_instance",
    "CheckinCityConfig",
    "generate_checkin_instance",
    "NEW_YORK",
    "TOKYO",
    "NormalAccuracy",
    "UniformAccuracy",
    # simulation & experiments
    "measure_solver",
    "OnlineSimulation",
    "ExperimentRunner",
    "ResultTable",
    "EXPERIMENTS",
    "get_experiment",
    "list_experiments",
    "run_experiment",
    "render_table",
    "write_series_csv",
    "export_json",
    # analysis
    "compute_instance_stats",
    "empirical_ratio_to_lower_bound",
    "empirical_ratios_vs_exact",
]
