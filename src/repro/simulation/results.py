"""Result records and aggregation tables for experiments.

One :class:`ExperimentRecord` is produced per (sweep value, algorithm,
repetition).  A :class:`ResultTable` collects records and aggregates them
into the per-(x, algorithm) means that the paper's figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.structures.stats import RunningStats


@dataclass(frozen=True)
class ExperimentRecord:
    """One measured solver run inside an experiment sweep."""

    experiment_id: str
    sweep_parameter: str
    sweep_value: float
    algorithm: str
    repetition: int
    max_latency: float
    completed: bool
    runtime_seconds: float
    peak_memory_mb: float
    extra: Mapping[str, float] = field(default_factory=dict)

    def metric(self, name: str) -> float:
        """Read a metric by name ("max_latency", "runtime_seconds", ...)."""
        if name == "max_latency":
            return self.max_latency
        if name == "runtime_seconds":
            return self.runtime_seconds
        if name == "peak_memory_mb":
            return self.peak_memory_mb
        if name == "completed":
            return float(self.completed)
        if name in self.extra:
            return float(self.extra[name])
        raise KeyError(f"unknown metric {name!r}")


#: The metrics the paper's figure panels report, in panel order.
FIGURE_METRICS: Tuple[str, ...] = ("max_latency", "runtime_seconds", "peak_memory_mb")


class ResultTable:
    """A collection of experiment records with aggregation helpers."""

    def __init__(self, experiment_id: str, sweep_parameter: str) -> None:
        self.experiment_id = experiment_id
        self.sweep_parameter = sweep_parameter
        self._records: List[ExperimentRecord] = []

    def add(self, record: ExperimentRecord) -> None:
        """Append one record (its experiment id must match the table's)."""
        if record.experiment_id != self.experiment_id:
            raise ValueError(
                f"record belongs to {record.experiment_id!r}, "
                f"table is {self.experiment_id!r}"
            )
        self._records.append(record)

    def extend(self, records: Iterable[ExperimentRecord]) -> None:
        """Append many records."""
        for record in records:
            self.add(record)

    @property
    def records(self) -> List[ExperimentRecord]:
        """All records (copy)."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def algorithms(self) -> List[str]:
        """Algorithm names present, in first-appearance order."""
        seen: List[str] = []
        for record in self._records:
            if record.algorithm not in seen:
                seen.append(record.algorithm)
        return seen

    def sweep_values(self) -> List[float]:
        """Sorted distinct sweep values."""
        return sorted({record.sweep_value for record in self._records})

    def aggregate(self, metric: str) -> Dict[str, Dict[float, RunningStats]]:
        """``algorithm -> sweep value -> statistics of the metric``."""
        table: Dict[str, Dict[float, RunningStats]] = {}
        for record in self._records:
            by_value = table.setdefault(record.algorithm, {})
            stats = by_value.setdefault(record.sweep_value, RunningStats())
            stats.add(record.metric(metric))
        return table

    def mean_series(self, metric: str) -> Dict[str, List[Tuple[float, float]]]:
        """Per-algorithm ``(sweep value, mean metric)`` series, sorted by value."""
        aggregated = self.aggregate(metric)
        series: Dict[str, List[Tuple[float, float]]] = {}
        for algorithm, by_value in aggregated.items():
            series[algorithm] = [
                (value, by_value[value].mean) for value in sorted(by_value)
            ]
        return series

    def completion_rate(self) -> float:
        """Fraction of runs that completed every task."""
        if not self._records:
            return 0.0
        return sum(record.completed for record in self._records) / len(self._records)

    def to_rows(self) -> List[Dict[str, object]]:
        """Plain-dict rows (one per record), handy for CSV-ish dumping."""
        rows: List[Dict[str, object]] = []
        for record in self._records:
            row: Dict[str, object] = {
                "experiment_id": record.experiment_id,
                self.sweep_parameter: record.sweep_value,
                "algorithm": record.algorithm,
                "repetition": record.repetition,
                "max_latency": record.max_latency,
                "completed": record.completed,
                "runtime_seconds": record.runtime_seconds,
                "peak_memory_mb": record.peak_memory_mb,
            }
            rows.append(row)
        return rows
