"""Mid-stream task submission across the serving stack.

The tentpole contract: for every engine-backed online solver,
``Session.submit_tasks`` is legal after the first arrival and the
resulting arrangement is **byte-identical** to a rebuild-from-scratch
oracle — a driver that recomputes each arrival's decision naively over
the tasks posted so far (fresh ``LegacyCandidateFinder`` whenever the
task set changes, the pre-engine observe loops per arrival).  The
hypothesis suite interleaves task batches into the worker stream at
random points; the dispatcher tests cover the same flow through
``LTCDispatcher.submit_tasks`` (routing snapshot growth, session
reopening, metrics).
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algorithms.aam import AAMSolver, LGFOnlySolver, LRFOnlySolver
from repro.algorithms.baselines import RandomOnlineSolver
from repro.algorithms.laf import LAFSolver
from repro.algorithms.mcf_ltc import MCFLTCSolver
from repro.core.candidate_engine import NumpyCandidateBackend
from repro.core.candidates import CandidateFinder
from repro.core.candidates_legacy import (
    LegacyCandidateFinder,
    legacy_aam_observe,
    legacy_laf_observe,
)
from repro.core.instance import LTCInstance
from repro.core.session import SessionStateError
from repro.core.task import Task
from repro.core.worker import Worker
from repro.geo.point import Point
from repro.service.dispatcher import LTCDispatcher
from repro.structures.topk import TopKHeap

NUMPY_AVAILABLE = NumpyCandidateBackend().is_available()

BACKENDS = ["python"] + (["numpy"] if NUMPY_AVAILABLE else [])


# ----------------------------------------------------------- oracle drivers
# "Rebuild-from-scratch": per arrival, decide naively over the tasks posted
# so far; whenever the task set changes, throw the candidate state away and
# rebuild a fresh legacy finder over a fresh instance snapshot.


def _forced_aam_observe(use_lgf):
    """The ablation observe loops (AAM's rule with the switch pinned)."""

    def observe(instance, arrangement, finder, worker):
        delta = arrangement.delta
        heap: TopKHeap = TopKHeap(worker.capacity)
        for task in finder.candidates(worker):
            if arrangement.is_task_complete(task.task_id):
                continue
            need = delta - arrangement.accumulated_of(task.task_id)
            if use_lgf:
                score = min(instance.acc_star(worker, task), need)
            else:
                score = need
            heap.push(score, task)
        for _, task in heap.pop_all():
            arrangement.assign(worker, task)

    return observe


ORACLE_OBSERVES = {
    LAFSolver: legacy_laf_observe,
    AAMSolver: legacy_aam_observe,
    LGFOnlySolver: _forced_aam_observe(use_lgf=True),
    LRFOnlySolver: _forced_aam_observe(use_lgf=False),
}

DYNAMIC_SOLVERS = sorted(ORACLE_OBSERVES, key=lambda cls: cls.name)


def oracle_drive(observe, base_instance, events):
    """Drive the rebuild-from-scratch oracle over an event sequence."""
    tasks = list(base_instance.tasks)
    arrangement = base_instance.new_arrangement()

    def rebuild():
        snapshot = LTCInstance(
            tasks=list(tasks),
            workers=list(base_instance.workers),
            error_rate=base_instance.error_rate,
            accuracy_model=base_instance.accuracy_model,
            min_assignable_accuracy=base_instance.min_assignable_accuracy,
        )
        return snapshot, LegacyCandidateFinder(snapshot)

    snapshot, finder = rebuild()
    for kind, payload in events:
        if kind == "tasks":
            tasks.extend(payload)
            arrangement.add_tasks(payload)
            snapshot, finder = rebuild()
        else:
            observe(snapshot, arrangement, finder, payload)
    return arrangement


def clone_instance(instance):
    """A fresh instance copy: dynamic sessions mutate theirs in place."""
    return LTCInstance(
        tasks=list(instance.tasks),
        workers=list(instance.workers),
        error_rate=instance.error_rate,
        accuracy_model=instance.accuracy_model,
        min_assignable_accuracy=instance.min_assignable_accuracy,
    )


def dynamic_drive(solver, base_instance, events):
    """Drive a live session over the same event sequence."""
    session = solver.open_session(clone_instance(base_instance))
    for kind, payload in events:
        if kind == "tasks":
            session.submit_tasks(payload)
        else:
            session.on_worker(payload)
    return session


# --------------------------------------------------------------- strategies


@st.composite
def dynamic_scenarios(draw):
    """A base instance plus an event stream with mid-stream task batches."""
    rng = draw(st.randoms(use_true_random=False))
    box = draw(st.sampled_from([50.0, 140.0]))
    num_tasks = draw(st.integers(min_value=1, max_value=10))
    num_workers = draw(st.integers(min_value=2, max_value=18))
    all_ids = rng.sample(range(5_000), num_tasks + 12)
    if draw(st.booleans()):
        all_ids.sort()  # monotone postings keep positions id-ordered
    id_cursor = iter(all_ids)

    def new_task():
        return Task(
            task_id=next(id_cursor),
            location=Point(rng.uniform(0, box), rng.uniform(0, box)),
        )

    tasks = [new_task() for _ in range(num_tasks)]
    workers = [
        Worker(
            index=index,
            location=Point(rng.uniform(0, box), rng.uniform(0, box)),
            accuracy=rng.uniform(0.66, 1.0),
            capacity=rng.randint(1, 4),
        )
        for index in range(1, num_workers + 1)
    ]
    instance = LTCInstance(
        tasks=tasks, workers=workers,
        error_rate=draw(st.sampled_from([0.2, 0.3])),
    )
    events = []
    remaining_batches = draw(st.integers(min_value=1, max_value=3))
    for worker in workers:
        if remaining_batches and rng.random() < 0.35:
            events.append(
                ("tasks", [new_task() for _ in range(rng.randint(1, 3))])
            )
            remaining_batches -= 1
        events.append(("worker", worker))
    if remaining_batches:
        # At least one batch lands strictly after the first arrival.
        events.append(("tasks", [new_task()]))
        events.append(("worker", workers[-1].at(
            num_workers + 1,
            workers[-1].location.x,
            workers[-1].location.y,
            accuracy=workers[-1].accuracy,
            capacity=workers[-1].capacity,
        )))
    return instance, events


class TestDynamicSolversMatchOracle:
    @given(data=dynamic_scenarios())
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.large_base_example])
    def test_arrangements_match_rebuild_from_scratch(self, data):
        instance, events = data
        for solver_cls, observe in ORACLE_OBSERVES.items():
            expected = oracle_drive(observe, instance, events).assignments
            for backend in BACKENDS:
                session = dynamic_drive(
                    solver_cls(candidates=backend), instance, events
                )
                got = session.result().arrangement.assignments
                assert got == expected, (solver_cls.name, backend)

    @given(data=dynamic_scenarios())
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.large_base_example])
    def test_random_solver_matches_rebuild_per_submit(self, data):
        """Random has no independent legacy loop; its oracle is the same
        solver with the candidate snapshot rebuilt at every submit (legal
        because Random keeps no per-position state and its rng draws
        depend only on the candidate lists, which must be identical)."""
        instance, events = data

        class RebuildEverySubmit(RandomOnlineSolver):
            def add_tasks(self, tasks):
                tasks = list(tasks)
                self._instance.add_tasks(tasks)
                self._arrangement.add_tasks(tasks)
                self._candidates = CandidateFinder(
                    self._instance,
                    use_spatial_index=self.use_spatial_index,
                    backend=self.candidates,
                )

        expected = (
            dynamic_drive(RebuildEverySubmit(seed=11), instance, events)
            .result().arrangement.assignments
        )
        for backend in BACKENDS:
            got = (
                dynamic_drive(
                    RandomOnlineSolver(seed=11, candidates=backend),
                    instance, events,
                )
                .result().arrangement.assignments
            )
            assert got == expected, backend


class TestSessionSemantics:
    @pytest.mark.parametrize("solver_cls", DYNAMIC_SOLVERS,
                             ids=lambda cls: cls.name)
    def test_submit_after_first_arrival_reopens_completion(
        self, solver_cls, tiny_instance
    ):
        session = solver_cls().open_session(tiny_instance)
        base_tasks = tiny_instance.num_tasks
        result = session.drive(iter(tiny_instance.workers))
        assert result.completed and session.is_complete
        session.submit_tasks([Task.at(77, 3.0, 1.0)])
        assert not session.is_complete
        snapshot = session.snapshot()
        assert snapshot.tasks_total == base_tasks + 1
        assert snapshot.tasks_remaining == 1

    def test_submitted_tasks_keep_arriving_in_batches(self, tiny_instance):
        session = LAFSolver().open_session(tiny_instance)
        base_tasks = tiny_instance.num_tasks
        session.on_worker(tiny_instance.workers[0])
        session.submit_tasks([Task.at(70, 2.0, 1.0)])
        session.submit_tasks([Task.at(71, 2.5, 1.0), Task.at(72, 3.0, 1.0)])
        assert session.snapshot().tasks_total == base_tasks + 3

    def test_callers_instance_object_is_never_mutated(self, tiny_instance):
        """A dynamic session works on a private instance copy: mid-stream
        submissions must not leak into the object the caller posted (a
        second session or offline baseline run on it would otherwise see
        a silently enlarged task set)."""
        base_ids = [task.task_id for task in tiny_instance.tasks]
        session = LAFSolver().open_session(tiny_instance)
        session.on_worker(tiny_instance.workers[0])
        session.submit_tasks([Task.at(70, 2.0, 1.0)])
        assert [task.task_id for task in tiny_instance.tasks] == base_ids
        assert session.snapshot().tasks_total == len(base_ids) + 1
        # A second session on the same instance starts from the original
        # task set and may receive the same late task independently.
        second = LAFSolver().open_session(tiny_instance)
        second.on_worker(tiny_instance.workers[0])
        second.submit_tasks([Task.at(70, 2.0, 1.0)])
        assert second.snapshot().tasks_total == len(base_ids) + 1

    def test_non_dynamic_session_refuses_live_submission(self, tiny_instance):
        session = MCFLTCSolver().open_session(tiny_instance)
        session.on_worker(tiny_instance.workers[0])
        with pytest.raises(SessionStateError, match="fixed future"):
            session.submit_tasks([Task.at(70, 2.0, 1.0)])


class TestDispatcherDynamicSessions:
    @staticmethod
    def _district(center_x, first_id, num_tasks=2, error_rate=0.3):
        tasks = [
            Task.at(first_id + i, center_x + float(i), 0.0)
            for i in range(num_tasks)
        ]
        # A throwaway worker satisfies instance validation; dispatch feeds
        # its own merged stream.
        workers = [Worker.at(1, center_x, 0.0, accuracy=0.9, capacity=2)]
        return LTCInstance(tasks=tasks, workers=workers,
                           error_rate=error_rate)

    @staticmethod
    def _stream(center_x, count, start_index=1):
        return [
            Worker.at(start_index + i, center_x + 0.5, 0.0, accuracy=0.9,
                      capacity=2)
            for i in range(count)
        ]

    def test_mid_stream_submission_routes_new_arrivals(self):
        dispatcher = LTCDispatcher(default_solver="LAF")
        session_id = dispatcher.submit_instance(self._district(0.0, 0))
        consumed = dispatcher.feed_stream(self._stream(0.0, 30))
        assert dispatcher.poll()[session_id].complete
        # New tasks *far* from the originals: only the grown routing
        # snapshot can route workers near them.
        dispatcher.submit_tasks(session_id, [Task.at(90, 500.0, 0.0)])
        assert not dispatcher.poll()[session_id].complete
        assert dispatcher.metrics.sessions_reopened == 1
        assert dispatcher.metrics.tasks_submitted == 1
        far_stream = self._stream(500.0, 30, start_index=consumed + 1)
        dispatcher.feed_stream(far_stream)
        status = dispatcher.poll()[session_id]
        assert status.complete
        result = dispatcher.close(session_id)
        assert any(a.task_id == 90 for a in result.arrangement)

    def test_pre_activation_submission_still_stages(self):
        dispatcher = LTCDispatcher(default_solver="LAF")
        session_id = dispatcher.submit_instance(self._district(0.0, 0))
        dispatcher.submit_tasks(session_id, [Task.at(50, 1.5, 0.0)])
        assert dispatcher.poll()[session_id].snapshot.tasks_total == 3
        dispatcher.feed_stream(self._stream(0.0, 40))
        result = dispatcher.close(session_id)
        assert result.completed
        assert any(a.task_id == 50 for a in result.arrangement)

    def test_duplicate_submission_leaves_dispatcher_consistent(self):
        dispatcher = LTCDispatcher(default_solver="LAF")
        session_id = dispatcher.submit_instance(self._district(0.0, 0))
        dispatcher.feed_worker(self._stream(0.0, 1)[0])
        with pytest.raises(ValueError):
            dispatcher.submit_tasks(session_id, [Task.at(0, 1.0, 0.0)])
        # The failed submission touched neither snapshot nor metrics.
        assert dispatcher.metrics.tasks_submitted == 0
        assert dispatcher.poll()[session_id].snapshot.tasks_total == 2

    def test_unknown_session_raises(self):
        dispatcher = LTCDispatcher()
        with pytest.raises(KeyError):
            dispatcher.submit_tasks("nope", [Task.at(1, 0.0, 0.0)])
