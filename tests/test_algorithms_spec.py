"""Tests for SolverSpec parsing/rendering and build_solver validation."""

import pytest

from repro.algorithms.registry import build_solver
from repro.algorithms.spec import SolverSpec


class TestParse:
    def test_bare_name(self):
        spec = SolverSpec.parse("AAM")
        assert spec.name == "AAM"
        assert spec.params == {}

    def test_single_float_parameter(self):
        spec = SolverSpec.parse("MCF-LTC?batch_multiplier=2.0")
        assert spec.name == "MCF-LTC"
        assert spec.params == {"batch_multiplier": 2.0}
        assert isinstance(spec.params["batch_multiplier"], float)

    def test_values_are_typed_by_syntax(self):
        spec = SolverSpec.parse("Random?seed=7&skip_completed=true&note=fast")
        assert spec.params == {"seed": 7, "skip_completed": True, "note": "fast"}
        assert isinstance(spec.params["seed"], int)
        assert spec.params["skip_completed"] is True

    def test_false_and_capitalised_booleans(self):
        assert SolverSpec.parse("X?a=false").params["a"] is False
        assert SolverSpec.parse("X?a=True").params["a"] is True

    def test_malformed_specs_raise(self):
        with pytest.raises(ValueError):
            SolverSpec.parse("MCF-LTC?")
        with pytest.raises(ValueError):
            SolverSpec.parse("MCF-LTC?batch_multiplier")
        with pytest.raises(ValueError):
            SolverSpec.parse("MCF-LTC?a=1&a=2")
        with pytest.raises(ValueError):
            SolverSpec.parse("")

    def test_round_trip_through_str(self):
        for text in (
            "AAM",
            "MCF-LTC?batch_multiplier=2.0",
            "Random?seed=7&skip_completed=true",
            "MCF-LTC?batch_multiplier=0.5&index_tiebreak=false&use_spatial_index=true",
        ):
            spec = SolverSpec.parse(text)
            assert SolverSpec.parse(str(spec)) == spec
            assert str(spec) == text  # params render in sorted order


class TestCoerce:
    def test_coerce_passthrough_and_string(self):
        spec = SolverSpec("LAF")
        assert SolverSpec.coerce(spec) is spec
        assert SolverSpec.coerce("LAF") == spec

    def test_coerce_dict(self):
        spec = SolverSpec.coerce(
            {"name": "MCF-LTC", "params": {"batch_multiplier": 2.0}}
        )
        assert spec == SolverSpec.parse("MCF-LTC?batch_multiplier=2.0")

    def test_dict_requires_name_and_rejects_unknown_keys(self):
        with pytest.raises(ValueError):
            SolverSpec.from_dict({"params": {}})
        with pytest.raises(ValueError):
            SolverSpec.from_dict({"name": "LAF", "kwargs": {}})

    def test_coerce_rejects_other_types(self):
        with pytest.raises(TypeError):
            SolverSpec.coerce(42)

    def test_to_dict_round_trips(self):
        spec = SolverSpec.parse("Random?seed=3")
        assert SolverSpec.from_dict(spec.to_dict()) == spec

    def test_with_params_merges(self):
        spec = SolverSpec.parse("MCF-LTC?batch_multiplier=1.0")
        updated = spec.with_params(batch_multiplier=2.0, index_tiebreak=False)
        assert updated.params == {"batch_multiplier": 2.0, "index_tiebreak": False}
        # the original spec is unchanged (specs are immutable values)
        assert spec.params == {"batch_multiplier": 1.0}

    def test_params_copied_from_caller(self):
        params = {"seed": 1}
        spec = SolverSpec("Random", params)
        params["seed"] = 99
        assert spec.params == {"seed": 1}

    def test_specs_are_hashable_value_objects(self):
        a = SolverSpec.parse("MCF-LTC?batch_multiplier=2.0")
        b = SolverSpec.parse("MCF-LTC?batch_multiplier=2.0")
        c = SolverSpec.parse("MCF-LTC?batch_multiplier=4.0")
        assert hash(a) == hash(b)
        assert {a, b, c} == {a, c}
        assert {SolverSpec.parse("AAM"): 1}[SolverSpec("AAM")] == 1

    def test_ambiguous_string_values_are_rejected(self):
        # The string syntax types values by their text, so a str that reads
        # as another type could not survive parse(str(spec)).
        for ambiguous in ("7", "2.5", "true", "False"):
            with pytest.raises(ValueError, match="re-parse"):
                SolverSpec("Random", {"tag": ambiguous})
        # unambiguous strings are fine and round-trip
        spec = SolverSpec("Random", {"tag": "fast"})
        assert SolverSpec.parse(str(spec)) == spec

    def test_unsupported_value_types_are_rejected(self):
        # e.g. JSON null / nested structures from a service request
        for bad in (None, [1, 2], {"nested": 1}):
            with pytest.raises(ValueError, match="unsupported value"):
                SolverSpec("Random", {"x": bad})
        with pytest.raises(ValueError, match="NaN"):
            SolverSpec("Random", {"x": float("nan")})
        with pytest.raises(ValueError, match="must be a string"):
            SolverSpec.from_dict({"name": 5})


class TestBuildSolver:
    def test_builds_with_parameters(self):
        solver = build_solver("MCF-LTC?batch_multiplier=2.0&use_spatial_index=false")
        assert solver.batch_multiplier == 2.0
        assert solver.use_spatial_index is False

    def test_unknown_parameter_lists_declared_ones(self):
        with pytest.raises(ValueError) as excinfo:
            build_solver("MCF-LTC?batch_size=3")
        message = str(excinfo.value)
        assert "batch_size" in message
        assert "batch_multiplier" in message

    def test_unknown_solver_name_raises_keyerror(self):
        with pytest.raises(KeyError):
            build_solver("NoSuchSolver?x=1")

    def test_accepts_spec_objects_and_dicts(self):
        assert build_solver(SolverSpec("LAF")).name == "LAF"
        assert build_solver({"name": "AAM"}).name == "AAM"
