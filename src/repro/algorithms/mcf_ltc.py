"""MCF-LTC — the offline minimum-cost-flow algorithm (Algorithm 1).

The offline LTC problem is NP-hard, so the paper processes workers in
batches sized by the latency lower bound of Theorem 2 and, within each
batch, computes a locally optimal arrangement by reduction to minimum-cost
flow:

* source ``st`` -> every batch worker ``w`` with capacity ``K`` and cost 0;
* ``w`` -> every (eligible) task ``t`` with capacity 1 and cost
  ``-Acc*(w, t)``;
* ``t`` -> sink ``ed`` with capacity ``ceil(delta - S[t])`` (how many more
  useful answers the task can absorb) and cost 0.

The min-cost max-flow of this network maximises the total ``Acc*`` the batch
contributes.  Workers left with spare capacity afterwards are topped up
greedily with their best uncompleted tasks (lines 8-15 of the pseudo-code).
Batches continue until every task reaches ``delta`` or the workers run out.
The paper proves a 7.5 approximation ratio for ``epsilon <= e^-1.5``.

Implementation notes
--------------------
* Edge costs receive a vanishing per-worker-index penalty so that, among
  cost-equal optimal flows, SSPA prefers workers that arrived earlier —
  consistent with the latency objective and deterministic across runs.
* The first batch uses ``floor(1.5 m)`` workers and subsequent batches
  ``floor(m)`` workers with ``m = |T| * ceil(delta) / K``, exactly as in the
  pseudo-code.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algorithms.base import OfflineSolver, SolveResult
from repro.core.arrangement import Arrangement
from repro.core.candidates import CandidateFinder
from repro.core.instance import LTCInstance
from repro.core.task import Task
from repro.core.worker import Worker
from repro.flow.network import FlowNetwork
from repro.flow.sspa import successive_shortest_paths
from repro.structures.topk import TopKHeap

_SOURCE = "__source__"
_SINK = "__sink__"


class MCFLTCSolver(OfflineSolver):
    """Minimum-cost-flow batch solver for offline LTC (paper Algorithm 1).

    Parameters
    ----------
    batch_multiplier:
        Scales the batch size relative to the paper's choice (1.0 keeps the
        pseudo-code sizes).  Exposed for the batch-size ablation study
        discussed in Sec. V-B1 of the paper.
    use_spatial_index:
        Restrict worker->task edges to eligible (nearby) pairs using the
        grid index.  Disabling it adds every pair with an eligible accuracy
        after an exhaustive scan (slower, identical results).
    index_tiebreak:
        Add a vanishing penalty favouring earlier workers among cost-equal
        flows.  Disable only when comparing raw flow costs against an
        external MCF solver.
    """

    name = "MCF-LTC"

    def __init__(
        self,
        batch_multiplier: float = 1.0,
        use_spatial_index: bool = True,
        index_tiebreak: bool = True,
    ) -> None:
        if batch_multiplier <= 0:
            raise ValueError("batch_multiplier must be positive")
        self.batch_multiplier = batch_multiplier
        self.use_spatial_index = use_spatial_index
        self.index_tiebreak = index_tiebreak

    # ------------------------------------------------------------------ solve

    def solve(self, instance: LTCInstance) -> SolveResult:
        arrangement = instance.new_arrangement()
        candidates = CandidateFinder(
            instance, use_spatial_index=self.use_spatial_index
        )
        delta = instance.delta
        capacity = instance.capacity

        base_batch = instance.num_tasks * math.ceil(delta) / capacity
        base_batch *= self.batch_multiplier
        first_batch_size = max(1, math.floor(1.5 * base_batch))
        batch_size = max(1, math.floor(base_batch))

        workers = instance.workers
        position = 0
        batches = 0
        total_flow = 0
        while position < len(workers) and not arrangement.is_complete():
            size = first_batch_size if batches == 0 else batch_size
            batch = workers[position:position + size]
            position += len(batch)
            batches += 1
            total_flow += self._solve_batch(
                instance, arrangement, candidates, batch
            )
            self._greedy_fill(instance, arrangement, candidates, batch)

        return SolveResult(
            algorithm=self.name,
            arrangement=arrangement,
            completed=arrangement.is_complete(),
            max_latency=arrangement.max_latency,
            workers_observed=position,
            extra={
                "batches": float(batches),
                "flow_units": float(total_flow),
                "batch_size": float(batch_size),
            },
        )

    # ------------------------------------------------------------ batch steps

    def _solve_batch(
        self,
        instance: LTCInstance,
        arrangement: Arrangement,
        candidates: CandidateFinder,
        batch: Sequence[Worker],
    ) -> int:
        """Run the MCF reduction for one batch and apply the resulting flow."""
        uncompleted = [
            instance.task(task_id) for task_id in arrangement.uncompleted_tasks()
        ]
        if not uncompleted or not batch:
            return 0

        network, pair_edges = self._build_network(
            instance, arrangement, candidates, batch, uncompleted
        )
        if not pair_edges:
            return 0
        result = successive_shortest_paths(network, _SOURCE, _SINK)

        # Apply every unit of flow on a worker->task edge as an assignment.
        for (worker_index, task_id), edge in pair_edges.items():
            if edge.flow > 0:
                worker = instance.worker(worker_index)
                task = instance.task(task_id)
                arrangement.assign(worker, task)
        return result.flow_value

    def _build_network(
        self,
        instance: LTCInstance,
        arrangement: Arrangement,
        candidates: CandidateFinder,
        batch: Sequence[Worker],
        uncompleted: Sequence[Task],
    ) -> Tuple[FlowNetwork, Dict[Tuple[int, int], "object"]]:
        """Build the batch flow network of Algorithm 1 (Fig. 2a)."""
        network = FlowNetwork()
        network.add_node(_SOURCE)
        network.add_node(_SINK)
        delta = arrangement.delta

        # Tie-break penalty: small enough never to flip a real cost
        # difference, large enough to order equal-cost alternatives.
        max_index = max(worker.index for worker in batch)
        epsilon = 1e-9 / (max_index + 1) if self.index_tiebreak else 0.0

        uncompleted_ids = {task.task_id for task in uncompleted}
        for task in uncompleted:
            need = delta - arrangement.accumulated_of(task.task_id)
            sink_capacity = max(0, math.ceil(need - 1e-12))
            if sink_capacity > 0:
                network.add_edge(("t", task.task_id), _SINK, sink_capacity, 0.0)

        pair_edges: Dict[Tuple[int, int], "object"] = {}
        for worker in batch:
            eligible = [
                task
                for task in candidates.candidates(worker)
                if task.task_id in uncompleted_ids
            ]
            if not eligible:
                continue
            network.add_edge(_SOURCE, ("w", worker.index), worker.capacity, 0.0)
            penalty = epsilon * worker.index
            for task in eligible:
                cost = -instance.acc_star(worker, task) + penalty
                edge = network.add_edge(
                    ("w", worker.index), ("t", task.task_id), 1, cost
                )
                pair_edges[(worker.index, task.task_id)] = edge
        return network, pair_edges

    def _greedy_fill(
        self,
        instance: LTCInstance,
        arrangement: Arrangement,
        candidates: CandidateFinder,
        batch: Sequence[Worker],
    ) -> None:
        """Lines 8-15: top up workers that still have spare capacity.

        Each such worker receives its best (largest ``Acc*``) uncompleted
        tasks it does not already perform, up to its remaining capacity.
        """
        for worker in batch:
            if arrangement.is_complete():
                return
            spare = worker.capacity - arrangement.load_of(worker.index)
            if spare <= 0:
                continue
            heap: TopKHeap = TopKHeap(spare)
            for task in candidates.candidates(worker):
                if arrangement.is_task_complete(task.task_id):
                    continue
                if (worker.index, task.task_id) in arrangement:
                    continue
                heap.push(instance.acc_star(worker, task), task)
            for _, task in heap.pop_all():
                arrangement.assign(worker, task)
