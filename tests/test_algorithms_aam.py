"""Tests for the AAM online solver (Algorithm 3) and its ablation variants."""

import pytest

from repro.algorithms.aam import AAMSolver, LGFOnlySolver, LRFOnlySolver
from repro.core.accuracy import TabularAccuracy
from repro.core.instance import LTCInstance
from repro.core.task import Task
from repro.core.worker import Worker
from repro.geo.point import Point


def tabular_instance(table, num_tasks, num_workers, capacity=2, error_rate=0.2):
    tasks = [Task(task_id=i, location=Point(i, 0)) for i in range(num_tasks)]
    workers = [
        Worker(index=i, location=Point(0, i), accuracy=0.9, capacity=capacity)
        for i in range(1, num_workers + 1)
    ]
    return LTCInstance(tasks=tasks, workers=workers, error_rate=error_rate,
                       accuracy_model=TabularAccuracy(table))


class TestStrategySwitching:
    def test_starts_with_lgf_when_many_tasks_remain(self, tiny_instance):
        solver = AAMSolver()
        solver.start(tiny_instance)
        solver.observe(tiny_instance.worker(1))
        assert solver.diagnostics()["lgf_rounds"] >= 1.0
        assert solver.diagnostics()["lrf_rounds"] == 0.0

    def test_switches_to_lrf_when_single_task_dominates(self):
        # Worker 1 can only perform task 0 (its accuracy for task 1 is below
        # the 0.66 eligibility threshold).  After that arrival the remaining
        # work is {2.37, 3.22}: avg = 5.59 / K = 2.80 < maxRemain = 3.22, so
        # worker 2 must be scored by remaining need (LRF) and pick task 1
        # before task 0.
        table = {(1, 0): 0.96, (1, 1): 0.50, (2, 0): 0.96, (2, 1): 0.96}
        instance = tabular_instance(table, num_tasks=2, num_workers=2, capacity=2)
        solver = AAMSolver()
        solver.start(instance)
        first = solver.observe(instance.worker(1))
        assert [a.task_id for a in first] == [0]
        second = solver.observe(instance.worker(2))
        assert solver.diagnostics()["lrf_rounds"] >= 1.0
        assert [a.task_id for a in second][0] == 1

    def test_lgf_prefers_gain_over_raw_acc_star(self):
        """A nearly-complete task should not monopolise an accurate worker.

        Workers 1-3 can only perform task 0 and bring it to within 0.57 of
        delta.  Worker 4 is equally accurate on both tasks; LAF would give it
        task 0 (ties break towards the first task), but AAM's LGF caps task
        0's gain at its remaining need, so task 1 wins.
        """
        from repro.algorithms.laf import LAFSolver

        table = {
            (1, 0): 0.97, (1, 1): 0.50,
            (2, 0): 0.97, (2, 1): 0.50,
            (3, 0): 0.97, (3, 1): 0.50,
            (4, 0): 0.97, (4, 1): 0.97,
        }
        instance = tabular_instance(table, num_tasks=2, num_workers=4, capacity=1,
                                    error_rate=0.2)

        aam = AAMSolver()
        aam.start(instance)
        for index in (1, 2, 3):
            aam.observe(instance.worker(index))
        assert aam.diagnostics()["lrf_rounds"] == 0.0
        aam_choice = aam.observe(instance.worker(4))
        assert [a.task_id for a in aam_choice] == [1]

        laf = LAFSolver()
        laf.start(instance)
        for index in (1, 2, 3):
            laf.observe(instance.worker(index))
        laf_choice = laf.observe(instance.worker(4))
        assert [a.task_id for a in laf_choice] == [0]


class TestAAMSolve:
    def test_completes_and_respects_constraints(self, small_synthetic_instance):
        result = AAMSolver().solve(small_synthetic_instance)
        assert result.completed
        violations = result.arrangement.constraint_violations(
            small_synthetic_instance.workers_by_index()
        )
        assert violations == []

    def test_never_worse_than_laf_on_running_example(self, running_example):
        from repro.algorithms.laf import LAFSolver

        aam = AAMSolver().solve(running_example)
        laf = LAFSolver().solve(running_example)
        assert aam.max_latency <= laf.max_latency

    def test_observe_before_start_raises(self, tiny_instance):
        solver = AAMSolver()
        with pytest.raises(RuntimeError):
            solver.observe(tiny_instance.worker(1))

    def test_diagnostics_rounds_sum_to_observed_rounds(self, tiny_instance):
        solver = AAMSolver()
        result = solver.solve(tiny_instance)
        diagnostics = result.extra
        # Every arrival with at least one open task triggers exactly one
        # strategy decision.
        assert diagnostics["lgf_rounds"] + diagnostics["lrf_rounds"] >= 1
        assert diagnostics["lgf_rounds"] + diagnostics["lrf_rounds"] <= result.workers_observed


class TestAblationVariants:
    def test_variants_complete(self, small_synthetic_instance):
        for solver_cls in (LGFOnlySolver, LRFOnlySolver):
            result = solver_cls().solve(small_synthetic_instance)
            assert result.completed, solver_cls.name

    def test_variant_names(self):
        assert LGFOnlySolver().name == "LGF-only"
        assert LRFOnlySolver().name == "LRF-only"
        assert AAMSolver().name == "AAM"

    def test_aam_not_worse_than_single_strategy_variants_on_average(
        self, small_synthetic_instance
    ):
        aam = AAMSolver().solve(small_synthetic_instance).max_latency
        lgf = LGFOnlySolver().solve(small_synthetic_instance).max_latency
        lrf = LRFOnlySolver().solve(small_synthetic_instance).max_latency
        # The hybrid should not lose to both of its components at once.
        assert aam <= max(lgf, lrf)
