"""Simulated worker answers.

The paper evaluates latency, not answer quality, because the Hoeffding bound
guarantees quality once the threshold is reached.  To make that guarantee
checkable, this module draws each worker's answer from a Bernoulli with the
pair's predicted accuracy: the worker answers the task's ground truth with
probability ``Acc(w, t)`` and the opposite otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.accuracy import AccuracyModel
from repro.core.arrangement import Arrangement
from repro.core.instance import LTCInstance


@dataclass
class AnswerSimulator:
    """Draws worker answers consistent with the predicted accuracies."""

    accuracy_model: AccuracyModel
    rng: np.random.Generator

    def answer(self, worker, task) -> int:
        """One simulated answer (+1 / -1) of ``worker`` on ``task``."""
        accuracy = self.accuracy_model.accuracy(worker, task)
        if self.rng.random() < accuracy:
            return task.true_answer
        return -task.true_answer


def simulate_answers(
    instance: LTCInstance,
    arrangement: Arrangement,
    rng: np.random.Generator,
) -> Dict[int, List[Tuple[int, int, float]]]:
    """Simulate the answers of every assignment in ``arrangement``.

    Returns a mapping ``task_id -> [(worker_index, answer, accuracy), ...]``
    suitable for feeding into weighted majority voting.
    """
    simulator = AnswerSimulator(accuracy_model=instance.accuracy_model, rng=rng)
    answers: Dict[int, List[Tuple[int, int, float]]] = {
        task.task_id: [] for task in instance.tasks
    }
    for assignment in arrangement.assignments:
        worker = instance.worker(assignment.worker_index)
        task = instance.task(assignment.task_id)
        drawn = simulator.answer(worker, task)
        answers[task.task_id].append((worker.index, drawn, assignment.acc))
    return answers
