"""Tests for repro.core.quality_threshold (the Hoeffding threshold delta)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.quality_threshold import (
    MIN_ACC_STAR,
    MIN_WORKER_ACCURACY,
    error_rate_for_threshold,
    quality_threshold,
)


class TestQualityThreshold:
    def test_paper_example_value(self):
        """Example 2: epsilon = 0.2 gives delta = 2 ln 5 ~= 3.22."""
        assert quality_threshold(0.2) == pytest.approx(2 * math.log(5), abs=1e-9)
        assert quality_threshold(0.2) == pytest.approx(3.22, abs=0.01)

    def test_reduction_value(self):
        """Theorem 1 uses epsilon = e^-0.5 so that delta = 1."""
        assert quality_threshold(math.exp(-0.5)) == pytest.approx(1.0)

    def test_stricter_error_rate_needs_more_quality(self):
        assert quality_threshold(0.06) > quality_threshold(0.22)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.1, 1.5])
    def test_rejects_out_of_range_error_rates(self, bad):
        with pytest.raises(ValueError):
            quality_threshold(bad)

    def test_error_rate_for_threshold_inverts(self):
        for eps in (0.06, 0.1, 0.14, 0.18, 0.22):
            assert error_rate_for_threshold(quality_threshold(eps)) == pytest.approx(eps)

    def test_error_rate_for_threshold_rejects_non_positive(self):
        with pytest.raises(ValueError):
            error_rate_for_threshold(0.0)

    @given(st.floats(min_value=1e-6, max_value=0.999))
    def test_round_trip_property(self, eps):
        assert error_rate_for_threshold(quality_threshold(eps)) == pytest.approx(eps, rel=1e-9)


class TestConstants:
    def test_spam_threshold_matches_paper(self):
        assert MIN_WORKER_ACCURACY == pytest.approx(0.66)

    def test_min_acc_star_is_consistent_with_spam_threshold(self):
        """(2 * 0.66 - 1)^2 = 0.1024 > 0.1, the floor used in Theorem 2."""
        exact = (2 * MIN_WORKER_ACCURACY - 1) ** 2
        assert exact > MIN_ACC_STAR
        assert MIN_ACC_STAR == pytest.approx(0.1)
