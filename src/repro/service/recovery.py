"""Journaled recovery for the sharded dispatch runtime.

A shard of a :class:`~repro.service.sharding.ShardedDispatcher` is one
:class:`~repro.service.LTCDispatcher` plus a FIFO arrival queue.  That
makes a failed shard *replayable*: everything that defines its state is
the ordered sequence of control-plane operations (session opens,
mid-stream ``submit_tasks``, ``expire_tasks``, ``close``) interleaved
with the routed worker arrivals it processed.  :class:`ArrivalJournal`
records exactly that sequence, and :meth:`ArrivalJournal.replay` feeds it
to a fresh dispatcher — which, because every layer below is
deterministic, rebuilds **byte-identical** session state (the same FIFO
argument as the sharding differential suite: per-session sub-streams are
replayed in their original per-session order).

Worker arrivals are journaled **write-ahead** (before the dispatch
attempt) so the arrival in flight when a shard crashes is not lost;
control-plane operations are journaled **after success** so a rejected
operation (duplicate id, affinity violation, offline solver) never
pollutes the journal.  The one thing that cannot be replayed is a
session opened with a *prebuilt* :class:`~repro.algorithms.base.Solver`
object — the dispatcher forbids reusing a solver object across sessions,
and rebuilding would need the constructor spec; such opens are recorded
as unreplayable and :meth:`replay` raises :class:`JournalReplayError`,
which the supervisor escalates to fail-fast.

:class:`RecoveryPolicy` configures what a shard failure does
(:data:`FAILURE_POLICIES`):

* ``"fail-fast"`` — park the error, flush the shard's queue, surface at
  the next ``drain()``/``stop()`` (PR 6's behaviour, now with explicit
  discard accounting).  No journal is kept.
* ``"restart"`` — rebuild the dead shard's dispatcher by replaying its
  journal, with a per-shard restart budget and deterministic backoff.
* ``"quarantine"`` — rebuild the shard's sessions *once* (same replay)
  and migrate them to the overflow shard; the geo shard stops serving
  and subsequent arrivals routed to it are discarded (counted).

:class:`ShardSupervisor` owns the policy's bookkeeping — restart budgets,
last errors, backoff sleeps (injectable; the default budget of
``backoff_seconds=0.0`` keeps test runs timing-free).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.algorithms.spec import SolverSpecLike
from repro.core.instance import LTCInstance
from repro.core.task import Task
from repro.core.worker import Worker

#: The accepted shard-failure policies, in documentation order.
FAILURE_POLICIES: Tuple[str, ...] = ("fail-fast", "restart", "quarantine")

#: Sentinel recorded for session opens that cannot be replayed (prebuilt
#: Solver objects; see the module docstring).
UNREPLAYABLE = object()


class JournalReplayError(RuntimeError):
    """A journal cannot rebuild its shard's state exactly."""


@dataclass(frozen=True)
class RecoveryPolicy:
    """What a shard failure does, and how hard recovery tries.

    Parameters
    ----------
    on_shard_failure:
        One of :data:`FAILURE_POLICIES`.  Journaling is enabled exactly
        when the policy can need a replay (``restart`` / ``quarantine``);
        ``fail-fast`` pays zero journaling overhead.
    max_restarts:
        Per-shard restart budget under ``"restart"``; once exhausted the
        shard fails fast.
    transient_retries:
        In-place retries of one arrival's dispatch attempt after a
        :class:`~repro.service.faults.TransientSolverError` before the
        failure escalates to the shard-failure path.
    backoff_seconds / backoff_multiplier:
        Sleep before the *n*-th restart of a shard:
        ``backoff_seconds * backoff_multiplier ** (n - 1)``.  The default
        of ``0.0`` keeps recovery (and CI) timing-free.
    """

    on_shard_failure: str = "fail-fast"
    max_restarts: int = 3
    transient_retries: int = 2
    backoff_seconds: float = 0.0
    backoff_multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.on_shard_failure not in FAILURE_POLICIES:
            raise ValueError(
                f"unknown shard-failure policy {self.on_shard_failure!r}; "
                f"expected one of {', '.join(FAILURE_POLICIES)}"
            )
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")
        if self.transient_retries < 0:
            raise ValueError("transient_retries must be non-negative")
        if self.backoff_seconds < 0.0:
            raise ValueError("backoff_seconds must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be at least 1.0")

    @property
    def journaling(self) -> bool:
        """Whether this policy requires per-shard arrival journals."""
        return self.on_shard_failure in ("restart", "quarantine")


@dataclass(frozen=True)
class RecoveryEvent:
    """One completed recovery action, for reporting and benchmarks."""

    shard_id: int
    action: str  # "restart" | "quarantine"
    replayed_arrivals: int
    duration_seconds: float
    error: str


class ArrivalJournal:
    """One shard's append-only operation log.

    Not internally locked: the owning runtime appends and replays under
    the shard's own lock, which already serialises dispatcher access.
    Entries are ``(kind, *payload)`` tuples in lock-acquisition order —
    the exact order the shard's dispatcher observed the operations.
    """

    __slots__ = ("_entries", "_worker_count", "_taint")

    def __init__(self) -> None:
        self._entries: List[tuple] = []
        self._worker_count = 0
        self._taint: Optional[str] = None

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def worker_count(self) -> int:
        """Journaled worker arrivals (the replay volume that matters)."""
        return self._worker_count

    @property
    def replayable(self) -> bool:
        return self._taint is None

    # ------------------------------------------------------------ recording

    def record_open(
        self,
        session_id: str,
        instance: LTCInstance,
        solver: Optional[SolverSpecLike],
        replayable: bool = True,
    ) -> None:
        self._entries.append(
            ("open", session_id, instance, solver if replayable else UNREPLAYABLE)
        )

    def record_tasks(self, session_id: str, tasks: Sequence[Task]) -> None:
        self._entries.append(("tasks", session_id, tuple(tasks)))

    def record_expire(self, session_id: str, task_ids: Sequence[int]) -> None:
        self._entries.append(("expire", session_id, tuple(task_ids)))

    def record_worker(self, worker: Worker) -> None:
        self._entries.append(("worker", worker))
        self._worker_count += 1

    def record_close(self, session_id: str) -> None:
        self._entries.append(("close", session_id))

    def mark_unreplayable(self, reason: str) -> None:
        """Poison the journal (e.g. after adopting foreign sessions)."""
        self._taint = reason

    def entries(self) -> List[tuple]:
        """A snapshot of the raw entries, in observation order.

        The process executor ships these across the pipe (after
        re-exporting task payloads) to replay a journal into a fresh
        worker process; call under the shard's lock.
        """
        return list(self._entries)

    def check_replayable(self) -> None:
        """Raise :class:`JournalReplayError` if :meth:`replay` would.

        The parent-side pre-scan for cross-process replay: the
        :data:`UNREPLAYABLE` sentinel loses its identity when pickled,
        so unreplayable opens (and taint) must be detected *before* the
        entries are shipped to a worker process.
        """
        if self._taint is not None:
            raise JournalReplayError(f"journal is not replayable: {self._taint}")
        for entry in self._entries:
            if entry[0] == "open" and entry[3] is UNREPLAYABLE:
                raise JournalReplayError(
                    f"session {entry[1]!r} was opened with a prebuilt "
                    "Solver object, which cannot be rebuilt from a spec; "
                    "journal replay is impossible for this shard"
                )

    # -------------------------------------------------------------- replay

    def replay(self, dispatcher) -> int:
        """Re-apply every entry, in order, to a fresh ``LTCDispatcher``.

        Returns the number of worker arrivals replayed.  Raises
        :class:`JournalReplayError` if the journal is tainted or contains
        an unreplayable session open; the target dispatcher may then be
        partially populated and must be discarded.
        """
        if self._taint is not None:
            raise JournalReplayError(f"journal is not replayable: {self._taint}")
        replayed = 0
        for entry in self._entries:
            kind = entry[0]
            if kind == "worker":
                dispatcher.feed_worker(entry[1])
                replayed += 1
            elif kind == "open":
                _, session_id, instance, solver = entry
                if solver is UNREPLAYABLE:
                    raise JournalReplayError(
                        f"session {session_id!r} was opened with a prebuilt "
                        "Solver object, which cannot be rebuilt from a spec; "
                        "journal replay is impossible for this shard"
                    )
                dispatcher.submit_instance(
                    instance, solver=solver, session_id=session_id
                )
            elif kind == "tasks":
                dispatcher.submit_tasks(entry[1], list(entry[2]))
            elif kind == "expire":
                dispatcher.expire_tasks(entry[1], list(entry[2]))
            else:  # close
                dispatcher.close(entry[1])
        return replayed


class ShardSupervisor:
    """Policy bookkeeping: decides what each shard failure becomes.

    Thread-safe.  ``sleep`` is injectable so tests can assert the backoff
    schedule without waiting it out.
    """

    def __init__(
        self,
        policy: RecoveryPolicy,
        sleep: Optional[Callable[[float], None]] = None,
    ) -> None:
        self._policy = policy
        self._sleep = sleep if sleep is not None else time.sleep
        self._lock = threading.Lock()
        self._restarts: Dict[int, int] = {}
        self._last_error: Dict[int, str] = {}

    @property
    def policy(self) -> RecoveryPolicy:
        return self._policy

    def decide(self, shard_id: int, error: BaseException) -> str:
        """Resolve one shard failure to ``"restart" | "quarantine" | "fail"``.

        Under ``"restart"`` each call that returns ``"restart"`` consumes
        one unit of the shard's budget; an exhausted budget (or any other
        policy) degrades to ``"fail"`` / ``"quarantine"`` respectively.
        """
        with self._lock:
            self._last_error[shard_id] = repr(error)
            if self._policy.on_shard_failure == "restart":
                if self._restarts.get(shard_id, 0) < self._policy.max_restarts:
                    self._restarts[shard_id] = self._restarts.get(shard_id, 0) + 1
                    return "restart"
                return "fail"
            if self._policy.on_shard_failure == "quarantine":
                return "quarantine"
            return "fail"

    def backoff(self, shard_id: int) -> float:
        """Sleep before the shard's next restart attempt; return the delay."""
        with self._lock:
            attempt = self._restarts.get(shard_id, 0)
        if attempt < 1 or self._policy.backoff_seconds <= 0.0:
            return 0.0
        delay = self._policy.backoff_seconds * (
            self._policy.backoff_multiplier ** (attempt - 1)
        )
        self._sleep(delay)
        return delay

    def restarts(self, shard_id: int) -> int:
        """How many restarts the shard has consumed."""
        with self._lock:
            return self._restarts.get(shard_id, 0)

    def last_error(self, shard_id: int) -> Optional[str]:
        """``repr`` of the shard's most recent failure, if any."""
        with self._lock:
            return self._last_error.get(shard_id)
