"""Descriptive statistics of an LTC instance.

The latency behaviour of every algorithm in the paper is governed by a small
number of workload properties: how many workers are eligible for each task
(scarcity), how many open tasks an arriving worker can choose between
(contention, relative to the capacity ``K``), and how much slack the instance
has between the ``Acc*`` the workers can contribute and the ``delta`` the
tasks require (feasibility margin).  :func:`compute_instance_stats` collects
them in one pass so experiments and examples can report them alongside the
latency results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.candidates import CandidateFinder
from repro.core.instance import LTCInstance
from repro.structures.stats import RunningStats


@dataclass(frozen=True)
class InstanceStats:
    """Summary statistics of one LTC instance.

    Attributes
    ----------
    num_tasks, num_workers, capacity, delta:
        Echoes of the instance parameters, for self-contained reports.
    eligible_workers_per_task:
        Distribution (min / mean / max) of how many workers may perform each
        task over the whole stream.  The minimum is the scarcity bottleneck
        that usually determines the maximum latency.
    candidate_tasks_per_worker:
        Distribution of how many tasks each worker could be assigned.  When
        the mean exceeds the capacity ``K`` the algorithms' task choices
        matter (contention); below it they mostly coincide.
    contention_ratio:
        ``mean candidate tasks per worker / capacity``.
    feasibility_margin:
        ``(total Acc* the workers can contribute) / (|T| * delta)``.  Values
        below 1 mean the instance cannot be completed.
    starved_tasks:
        Task ids whose eligible-worker count is within 25% of the minimum
        number of answers they need — the likely latency bottlenecks.
    """

    num_tasks: int
    num_workers: int
    capacity: int
    delta: float
    eligible_workers_per_task: Dict[str, float]
    candidate_tasks_per_worker: Dict[str, float]
    contention_ratio: float
    feasibility_margin: float
    starved_tasks: List[int]

    def describe(self) -> str:
        """A short human-readable summary."""
        return (
            f"{self.num_tasks} tasks / {self.num_workers} workers, K={self.capacity}, "
            f"delta={self.delta:.2f}; eligible workers per task "
            f"min={self.eligible_workers_per_task['min']:.0f} "
            f"mean={self.eligible_workers_per_task['mean']:.1f}; "
            f"contention={self.contention_ratio:.2f}; "
            f"feasibility margin={self.feasibility_margin:.2f}; "
            f"{len(self.starved_tasks)} starved task(s)"
        )


def compute_instance_stats(
    instance: LTCInstance, use_spatial_index: bool = True
) -> InstanceStats:
    """Compute :class:`InstanceStats` for ``instance``.

    One pass over the workers; cost is roughly the same as running LAF once.
    """
    finder = CandidateFinder(instance, use_spatial_index=use_spatial_index)

    per_task = {task.task_id: 0 for task in instance.tasks}
    per_task_best_acc_star = {task.task_id: 0.0 for task in instance.tasks}
    per_worker = RunningStats()
    total_available = 0.0

    for worker in instance.workers:
        candidates = finder.candidates(worker)
        per_worker.add(len(candidates))
        best = 0.0
        for task in candidates:
            star = instance.acc_star(worker, task)
            per_task[task.task_id] += 1
            best = max(best, star)
            if star > per_task_best_acc_star[task.task_id]:
                per_task_best_acc_star[task.task_id] = star
        total_available += worker.capacity * best

    task_stats = RunningStats()
    task_stats.extend([float(count) for count in per_task.values()])

    delta = instance.delta
    starved: List[int] = []
    for task in instance.tasks:
        best_star = per_task_best_acc_star[task.task_id]
        if best_star <= 0:
            starved.append(task.task_id)
            continue
        needed_answers = delta / best_star
        if per_task[task.task_id] <= 1.25 * needed_answers:
            starved.append(task.task_id)

    required = delta * instance.num_tasks
    feasibility_margin = total_available / required if required > 0 else float("inf")

    return InstanceStats(
        num_tasks=instance.num_tasks,
        num_workers=instance.num_workers,
        capacity=instance.capacity,
        delta=delta,
        eligible_workers_per_task={
            "min": task_stats.minimum,
            "mean": task_stats.mean,
            "max": task_stats.maximum,
        },
        candidate_tasks_per_worker={
            "min": per_worker.minimum,
            "mean": per_worker.mean,
            "max": per_worker.maximum,
        },
        contention_ratio=per_worker.mean / instance.capacity,
        feasibility_margin=feasibility_margin,
        starved_tasks=sorted(starved),
    )
