"""Largest Acc First (LAF) — Algorithm 2.

LAF is the simplest online greedy: when a worker arrives, assign them the
(at most) K uncompleted eligible tasks with the largest ``Acc*``.  The paper
proves a competitive ratio of 7.967 under the assumption
``epsilon <= e^-1.5`` (delta >= 3).

Per arrival the selection runs on the candidate engine's bulk
``topk_acc_star`` path: one radius gather plus one batched ``Acc*``
evaluation over the candidate set.  Completed tasks are excluded by
retiring them through the :class:`~repro.core.candidates.CandidateFinder`
facade the moment they complete — the engine's tombstone mask filters
them out of every later query, replacing the per-solver completed-flag
container the pre-dynamic implementation threaded into ``topk``.  The
arrangement is byte-identical to the pre-engine object-level loop
(pinned by the differential suite against
:func:`repro.core.candidates_legacy.legacy_laf_arrangement`).

LAF is **dynamic**: tasks may keep being posted after serving starts
(:meth:`LAFSolver.add_tasks`), landing in the engine's spill/append path
instead of forcing a snapshot rebuild.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.algorithms.base import OnlineSolver
from repro.core.arrangement import Arrangement, Assignment
from repro.core.candidate_engine import validate_candidate_backend_name
from repro.core.candidates import CandidateFinder
from repro.core.instance import LTCInstance
from repro.core.task import Task
from repro.core.worker import Worker


class LAFSolver(OnlineSolver):
    """Largest Acc First online solver (paper Algorithm 2).

    Parameters
    ----------
    use_spatial_index:
        Restrict candidate queries to the grid index under the sigmoid
        accuracy model; disabling forces the exhaustive scan.
    candidates:
        Candidate-engine backend name (``"python"``, ``"numpy"``,
        ``"auto"``); ``None`` defers to ``REPRO_CANDIDATES_BACKEND`` /
        auto-detection.  Backends are exact, so arrangements do not depend
        on this choice; it is reachable from spec strings as
        ``"LAF?candidates=numpy"``.  Unknown names raise immediately.
    """

    name = "LAF"
    supports_dynamic_tasks = True
    supports_task_expiry = True

    def __init__(
        self, use_spatial_index: bool = True, candidates: Optional[str] = None
    ) -> None:
        validate_candidate_backend_name(candidates)
        self._use_spatial_index = use_spatial_index
        self._candidates_backend = candidates
        self._instance: Optional[LTCInstance] = None
        self._arrangement: Optional[Arrangement] = None
        self._candidates: Optional[CandidateFinder] = None
        self._workers_with_assignments = 0

    # --------------------------------------------------------------- protocol

    def start(self, instance: LTCInstance) -> None:
        self._instance = instance
        self._arrangement = instance.new_arrangement()
        self._candidates = CandidateFinder(
            instance,
            use_spatial_index=self._use_spatial_index,
            backend=self._candidates_backend,
        )
        self._workers_with_assignments = 0

    @property
    def arrangement(self) -> Arrangement:
        if self._arrangement is None:
            raise RuntimeError("start() must be called before reading the arrangement")
        return self._arrangement

    def add_tasks(self, tasks: Sequence[Task]) -> None:
        """Post additional tasks mid-stream (the dynamic-arrival path).

        Extends the instance, the arrangement (zero accumulated quality)
        and the candidate snapshot in place — no rebuild; the engine
        appends the tasks at fresh stable positions.  Serving continues
        with the enlarged open set on the very next arrival.
        """
        if self._instance is None or self._arrangement is None or self._candidates is None:
            raise RuntimeError("start() must be called before add_tasks()")
        tasks = list(tasks)
        self._instance.add_tasks(tasks)
        self._arrangement.add_tasks(tasks)
        self._candidates.add_tasks(tasks)

    def expire_tasks(self, task_ids: Sequence[int]) -> List[int]:
        """Abandon overdue tasks (the TTL sweep path); return the expired ids.

        Expired tasks are abandoned in the arrangement (they stop blocking
        completion, keep their partial quality, and refuse further
        assignments) and tombstoned in the candidate snapshot (they vanish
        from every later ``topk`` query without a rebuild).  Completed and
        already-expired ids are skipped; unknown ids raise ``KeyError``.
        """
        if self._instance is None or self._arrangement is None or self._candidates is None:
            raise RuntimeError("start() must be called before expire_tasks()")
        arrangement = self._arrangement
        position_of = self._candidates.engine.position_of
        expired: List[int] = []
        for task_id in task_ids:
            if task_id not in position_of:
                raise KeyError(f"task id {task_id} is not in the snapshot")
            if arrangement.is_task_abandoned(task_id):
                continue
            if arrangement.is_task_complete(task_id):
                continue
            expired.append(task_id)
        if expired:
            arrangement.abandon_tasks(expired)
            self._candidates.retire_tasks(expired)
        return expired

    def observe(self, worker: Worker) -> List[Assignment]:
        """Assign the K largest-``Acc*`` uncompleted tasks to ``worker``."""
        if self._instance is None or self._arrangement is None or self._candidates is None:
            raise RuntimeError("start() must be called before observe()")
        arrangement = self._arrangement
        candidates = self._candidates

        assignments: List[Assignment] = []
        for task in candidates.engine.topk_acc_star(worker, worker.capacity):
            assignments.append(arrangement.assign(worker, task))
            if arrangement.is_task_complete(task.task_id):
                candidates.retire_tasks((task.task_id,))
        if assignments:
            self._workers_with_assignments += 1
        return assignments

    def diagnostics(self) -> Dict[str, float]:
        return {"workers_with_assignments": float(self._workers_with_assignments)}
