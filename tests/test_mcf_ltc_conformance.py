"""Conformance: MCF-LTC arrangements are byte-identical across the kernel refactor.

``tests/data/mcf_ltc_conformance.json`` was captured at commit 232a14f,
immediately *before* the flow layer was rewritten onto the array kernel
(object-graph ``FlowNetwork``, Bellman-Ford potentials, per-batch network
rebuild, float-epsilon index tie-breaking).  These tests replay the same
seeded synthetic instances through the current solver and require the
exact assignment sequence — worker and task ids in order — plus the
headline metrics to match.

If an intentional algorithmic change legitimately alters the optimal
arrangements, regenerate the fixture and say so in the commit message; an
unexplained diff here means the refactor changed behaviour.
"""

import json
from pathlib import Path

import pytest

from repro.algorithms.mcf_ltc import MCFLTCSolver
from repro.datagen.synthetic import SyntheticConfig, generate_synthetic_instance
from repro.flow.backends import available_backends

FIXTURE = Path(__file__).parent / "data" / "mcf_ltc_conformance.json"

# Every registered flow backend must reproduce the golden arrangements
# byte-for-byte — the backend contract makes backend choice purely a speed
# knob.  ``None`` additionally exercises the default resolution path
# (REPRO_FLOW_BACKEND / auto-selection).
BACKENDS = [None, "python"] + (
    ["numpy"] if "numpy" in available_backends() else []
)


def load_cases():
    with FIXTURE.open() as fh:
        return json.load(fh)["cases"]


@pytest.mark.parametrize("backend", BACKENDS, ids=lambda b: f"backend-{b or 'default'}")
@pytest.mark.parametrize("case", load_cases(), ids=lambda c: f"seed{c['config']['seed']}")
class TestArrangementConformance:
    def test_assignments_identical_to_pre_refactor_capture(self, case, backend):
        cfg = case["config"]
        instance = generate_synthetic_instance(
            SyntheticConfig(name=f"conformance-{cfg['seed']}", **cfg)
        )
        result = MCFLTCSolver(backend=backend).solve(instance)
        assignments = [[a.worker_index, a.task_id] for a in result.arrangement.assignments]
        assert assignments == case["assignments"]
        assert result.completed == case["completed"]
        assert result.max_latency == case["max_latency"]
        assert result.workers_observed == case["workers_observed"]
        assert result.extra["flow_units"] == case["flow_units"]
        assert result.extra["batches"] == case["batches"]

    def test_arrangement_satisfies_all_constraints(self, case, backend):
        cfg = case["config"]
        instance = generate_synthetic_instance(
            SyntheticConfig(name=f"conformance-{cfg['seed']}", **cfg)
        )
        result = MCFLTCSolver(backend=backend).solve(instance)
        assert result.arrangement.constraint_violations(
            instance.workers_by_index()
        ) == []
