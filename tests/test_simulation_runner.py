"""Tests for the experiment runner."""

from repro.core.accuracy import ConstantAccuracy
from repro.core.instance import LTCInstance
from repro.core.task import Task
from repro.core.worker import Worker
from repro.geo.point import Point
from repro.simulation.runner import ExperimentRunner


def toy_factory(sweep_value, repetition):
    """Instance whose size depends on the sweep value (number of tasks)."""
    num_tasks = int(sweep_value)
    tasks = [Task(task_id=i, location=Point(i, 0)) for i in range(num_tasks)]
    workers = [
        Worker(index=i, location=Point(0, i), accuracy=0.9, capacity=2)
        for i in range(1, 20)
    ]
    return LTCInstance(tasks=tasks, workers=workers, error_rate=0.2,
                       accuracy_model=ConstantAccuracy(0.9))


class TestExperimentRunner:
    def test_produces_one_record_per_cell(self):
        runner = ExperimentRunner(
            experiment_id="toy",
            sweep_parameter="|T|",
            sweep_values=[1, 2],
            instance_factory=toy_factory,
            algorithms=["LAF", "AAM"],
            repetitions=2,
            track_memory=False,
        )
        table = runner.run()
        assert len(table) == 2 * 2 * 2
        assert set(table.algorithms()) == {"LAF", "AAM"}
        assert table.sweep_values() == [1.0, 2.0]
        assert table.completion_rate() == 1.0

    def test_progress_callback_invoked(self):
        messages = []
        runner = ExperimentRunner(
            experiment_id="toy",
            sweep_parameter="|T|",
            sweep_values=[1],
            instance_factory=toy_factory,
            algorithms=["LAF"],
            repetitions=1,
            track_memory=False,
            progress=messages.append,
        )
        runner.run()
        assert len(messages) == 1
        assert "toy" in messages[0] and "LAF" in messages[0]

    def test_spec_strings_parameterize_solvers(self):
        runner = ExperimentRunner(
            experiment_id="toy",
            sweep_parameter="|T|",
            sweep_values=[2],
            instance_factory=toy_factory,
            algorithms=["MCF-LTC?batch_multiplier=0.5", "MCF-LTC?batch_multiplier=4.0"],
            repetitions=1,
            track_memory=False,
        )
        table = runner.run()
        assert set(table.algorithms()) == {
            "MCF-LTC?batch_multiplier=0.5",
            "MCF-LTC?batch_multiplier=4.0",
        }
        batch_sizes = {
            record.algorithm: record.extra["batch_size"] for record in table.records
        }
        assert (batch_sizes["MCF-LTC?batch_multiplier=0.5"]
                < batch_sizes["MCF-LTC?batch_multiplier=4.0"])

    def test_algorithms_for_sweep_tracks_the_sweep_value(self):
        sweep_requests = []

        def per_sweep(value):
            sweep_requests.append(value)
            return [f"MCF-LTC?batch_multiplier={value}"]

        runner = ExperimentRunner(
            experiment_id="toy",
            sweep_parameter="batch_multiplier",
            sweep_values=[0.5, 2.0],
            instance_factory=lambda value, repetition: toy_factory(2, repetition),
            algorithms=["MCF-LTC"],
            repetitions=1,
            track_memory=False,
            algorithms_for_sweep=per_sweep,
        )
        table = runner.run()
        assert sweep_requests == [0.5, 2.0]
        # Sweep-supplied specs are labelled with the bare solver name: the
        # sweep value already identifies the varying parameter.
        assert set(table.algorithms()) == {"MCF-LTC"}
        batch_sizes = {
            record.sweep_value: record.extra["batch_size"]
            for record in table.records
        }
        assert batch_sizes[0.5] < batch_sizes[2.0]

    def test_sweep_labels_stay_distinct_for_same_name_specs(self):
        runner = ExperimentRunner(
            experiment_id="toy",
            sweep_parameter="|T|",
            sweep_values=[2],
            instance_factory=toy_factory,
            algorithms=[],
            repetitions=1,
            track_memory=False,
            algorithms_for_sweep=lambda value: [
                "MCF-LTC?batch_multiplier=0.5",
                "MCF-LTC?batch_multiplier=4.0",
            ],
        )
        table = runner.run()
        # Two parameterizations of one solver must not merge into one label.
        assert set(table.algorithms()) == {
            "MCF-LTC?batch_multiplier=0.5",
            "MCF-LTC?batch_multiplier=4.0",
        }

    def test_latency_scales_with_sweep_value(self):
        runner = ExperimentRunner(
            experiment_id="toy",
            sweep_parameter="|T|",
            sweep_values=[1, 4],
            instance_factory=toy_factory,
            algorithms=["LAF"],
            repetitions=1,
            track_memory=False,
        )
        series = runner.run().mean_series("max_latency")["LAF"]
        assert series[0][1] < series[1][1]
