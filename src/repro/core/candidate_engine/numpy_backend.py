"""Numpy-vectorized candidate backend.

The engine's struct-of-arrays snapshot was designed so this backend can
answer a worker's whole candidate query in a handful of array operations:
gather the CSR cell rows overlapping the eligibility disk (one contiguous
slice per cell row), filter by the exact squared distance, evaluate the
sigmoid accuracy over the surviving block in one vectorized pass, and —
for top-``k`` selection — preselect a score superset with
``np.partition`` before handing it to the scalar heap.

Bit-exactness with
:class:`~repro.core.candidate_engine.python_backend.PythonCandidateBackend`
is engineered the same way the numpy flow backend is (the PR 3 playbook):

* the radius prefilter ``dx*dx + dy*dy <= r*r`` uses elementwise
  multiplies and one add in the scalar association order — IEEE-754 gives
  identical bits, so the gathered candidate *set* is exact;
* the vectorized sigmoid is only trusted **outside the decision band**
  (:data:`~repro.core.candidate_engine.base.DECISION_BAND` around the
  eligibility threshold); the rare pairs inside the band are re-checked
  with the engine's scalar path, which is authoritative;
* top-``k`` preselection keeps every candidate within
  :data:`~repro.core.candidate_engine.base.TOPK_SCORE_MARGIN` of the
  approximate k-th best score — a guaranteed superset of the scalar
  heap's retained set — and the superset is rescored through the *shared*
  scalar heap loop, so pop order (including the lower-id tie rule) is
  identical by construction;
* ``generic`` engines (arbitrary python accuracy models) are delegated
  wholesale to the scalar backend: there is nothing to vectorize;
* dynamic snapshots cost one boolean mask: tombstoned positions are
  filtered with the mirrored ``alive`` array inside the same keep-mask
  as the radius prefilter, and the spill range (tasks appended since
  the last grid rebuild) is prefiltered as one extra contiguous slice —
  both use the identical pinned arithmetic, so exactness is unaffected.
  The mirrors re-sync incrementally (tail concatenation + tombstone-log
  replay) rather than rebuilding per mutation.

Vectorization is also **adaptive**: queries whose gathered block would
carry fewer than :data:`VECTOR_MIN_BLOCK` candidates take the scalar path
outright (the block size is bounded with plain-int CSR offset arithmetic
before any array work), so the paper's sparse regime never pays numpy's
fixed dispatch overhead.  At worst this backend *is* the python backend;
in dense regimes it is measurably faster
(``benchmarks/bench_candidates.py`` reports both regimes honestly).

The numpy import is deferred to :func:`load_numpy` so that registering
the backend never requires numpy; environments without it fall back to
the pure-python backend via auto-selection.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.core.candidate_engine.base import (
    DECISION_BAND,
    TOPK_SCORE_MARGIN,
    CandidateBackend,
)
from repro.core.candidate_engine.python_backend import PythonCandidateBackend

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.core.candidate_engine.engine import CandidateEngine
    from repro.core.worker import Worker

_SCALAR_FALLBACK = PythonCandidateBackend()

#: Queries whose gathered block would carry fewer candidates than this run
#: through the scalar backend instead (exactly the flow-kernel numpy
#: backend's adaptive-cutover playbook).  Numpy pays a fixed per-operation
#: dispatch overhead (~25-30 small-array ops per query) that only
#: amortises once a block carries on the order of a hundred candidates;
#: the paper's sparse setup (~12 eligible tasks per worker) stays scalar,
#: dense urban workloads vectorize.  Both paths produce identical results,
#: so the cutover is purely a speed knob — it is what makes auto-selection
#: safe to prefer numpy unconditionally.
VECTOR_MIN_BLOCK = 96


def load_numpy():
    """Import and return numpy (split out so tests can simulate absence)."""
    import numpy

    return numpy


class NumpyCandidateBackend(CandidateBackend):
    """Vectorized array passes; available when numpy imports."""

    name = "numpy"

    def is_available(self) -> bool:
        try:
            load_numpy()
        except ImportError:
            return False
        return True

    # ----------------------------------------------------- state containers

    def bool_array(self, size: int):
        np = load_numpy()
        return np.zeros(size, dtype=bool)

    def float_array(self, size: int, fill: float):
        np = load_numpy()
        return np.full(size, fill, dtype=np.float64)

    # -------------------------------------------------------- vector passes

    def _small_query(self, engine: "CandidateEngine", worker: "Worker") -> bool:
        """Whether this worker's query should take the scalar path.

        The gathered-block size is bounded with plain-int CSR offset
        arithmetic before any array work; radius/span computation is
        repeated by the vector pass when it does run, which costs ~1us
        against the much larger swing of picking the right path.
        """
        if engine.mode != "grid":
            return engine.num_tasks < VECTOR_MIN_BLOCK
        radius = engine.radius_of(worker)
        if radius < 0:
            return True
        col0, col1, row0, row1 = engine.cell_span(
            worker.location.x, worker.location.y, radius
        )
        start = engine.cell_start
        assert start is not None
        # The spill range (appended since the last grid rebuild) joins
        # every gathered block; tombstoned members only over-estimate.
        total = engine.num_tasks - engine.spill_start
        if total >= VECTOR_MIN_BLOCK:
            return False
        for row in range(row0, row1 + 1):
            base = row * engine.cols
            total += start[base + col1 + 1] - start[base + col0]
            if total >= VECTOR_MIN_BLOCK:
                return False
        return True

    def _candidate_block(
        self, engine: "CandidateEngine", np, worker: "Worker"
    ) -> Tuple[object, object]:
        """``(positions, squared_distances)`` after the exact radius prefilter.

        In scan mode the block is every alive task in posting order (the
        oracle scan applies no radius gate, and neither may we).  In grid
        mode the block is the CSR cells plus the spill range of positions
        appended since the last grid rebuild, tombstones filtered out of
        both.  Returns empty arrays when the worker can never reach the
        threshold.
        """
        mirrors = engine.numpy_mirrors(np)
        wx, wy = worker.location.x, worker.location.y
        if engine.mode == "grid":
            radius = engine.radius_of(worker)
            if radius < 0:
                empty = np.empty(0, dtype=np.int64)
                return empty, empty
            col0, col1, row0, row1 = engine.cell_span(wx, wy, radius)
            start = engine.cell_start
            assert start is not None
            parts = []
            parts_x = []
            parts_y = []
            for row in range(row0, row1 + 1):
                base = row * engine.cols
                lo = start[base + col0]
                hi = start[base + col1 + 1]
                if lo < hi:
                    parts.append(mirrors.cell_positions[lo:hi])
                    parts_x.append(mirrors.xs_cell[lo:hi])
                    parts_y.append(mirrors.ys_cell[lo:hi])
            if parts:
                if len(parts) == 1:
                    block, block_x, block_y = parts[0], parts_x[0], parts_y[0]
                else:
                    block = np.concatenate(parts)
                    block_x = np.concatenate(parts_x)
                    block_y = np.concatenate(parts_y)
                dxs = block_x - wx
                dys = block_y - wy
                d2 = dxs * dxs + dys * dys
                keep = d2 <= radius * radius
                if engine.dead_count:
                    keep &= mirrors.alive[block]
                block, d2 = block[keep], d2[keep]
            else:
                block = d2 = np.empty(0, dtype=np.int64)
            spill_lo = engine.spill_start
            if spill_lo < engine.num_tasks:
                dxs = mirrors.xs[spill_lo:] - wx
                dys = mirrors.ys[spill_lo:] - wy
                spill_d2 = dxs * dxs + dys * dys
                keep = spill_d2 <= radius * radius
                if engine.dead_count:
                    keep &= mirrors.alive[spill_lo:]
                spill = np.arange(spill_lo, engine.num_tasks, dtype=np.int64)
                spill, spill_d2 = spill[keep], spill_d2[keep]
                if len(block):
                    block = np.concatenate([block, spill])
                    d2 = np.concatenate([d2, spill_d2])
                else:
                    block, d2 = spill, spill_d2
            return block, d2
        # Scan mode: the block is every task, gathered in posting order so
        # that downstream filters preserve the oracle's iteration order
        # (boolean masking is order-preserving).
        block = mirrors.instance_positions
        if engine.dead_count:
            block = block[mirrors.alive[block]]
        dxs = mirrors.xs[block] - wx
        dys = mirrors.ys[block] - wy
        return block, dxs * dxs + dys * dys

    def _eligibility_mask(
        self, engine: "CandidateEngine", np, worker: "Worker", positions, d2
    ):
        """Exact eligibility decisions for a candidate block.

        The vectorized sigmoid decides outright outside the band around
        the threshold; inside it (essentially never hit in practice) the
        scalar path is consulted per pair.  ``sqrt`` of the prefilter's
        squared distances and a clipped exponent stand in for the scalar
        path's ``hypot`` and saturation guard — both approximations stay
        ulps away from the scalar values, far inside the band.
        """
        exponent = np.minimum(np.sqrt(d2) - engine.d_max, 700.0)
        acc = worker.accuracy / (1.0 + np.exp(exponent))
        threshold = engine.threshold
        eligible = acc >= threshold + DECISION_BAND
        band = (acc >= threshold - DECISION_BAND) & ~eligible
        if band.any():
            scalar_eligible = engine.scalar_eligible
            for i in np.nonzero(band)[0]:
                eligible[i] = scalar_eligible(worker, int(positions[i]))
        return eligible, acc

    def _eligible_with_acc(
        self, engine: "CandidateEngine", np, worker: "Worker",
        allowed: Optional[Sequence[bool]],
        sort: bool = True,
    ):
        """Eligible positions plus their (approximate) accuracies.

        ``sort=True`` returns the oracle iteration order (ascending
        position in grid mode; scan blocks already stream in instance
        order).  Top-k skips the full sort and orders only its superset.
        """
        positions, d2 = self._candidate_block(engine, np, worker)
        if allowed is not None and len(positions):
            keep = np.asarray(allowed)[positions]
            positions, d2 = positions[keep], d2[keep]
        if not len(positions):
            return positions, d2
        eligible, acc = self._eligibility_mask(engine, np, worker, positions, d2)
        positions = positions[eligible]
        acc = acc[eligible]
        if sort and engine.mode == "grid":
            # Cell gathering is row-major (plus the spill tail); the
            # oracle order is ascending task id — ascending position
            # while appends stayed id-monotone, id-keyed otherwise.
            if engine.positions_id_ordered:
                order = np.argsort(positions)
            else:
                order = np.argsort(engine.numpy_mirrors(np).task_ids[positions])
            positions, acc = positions[order], acc[order]
        return positions, acc

    # ------------------------------------------------------------- queries

    def eligible_positions(
        self,
        engine: "CandidateEngine",
        worker: "Worker",
        allowed: Optional[Sequence[bool]] = None,
        ordered: bool = True,
    ):
        if engine.mode == "generic" or self._small_query(engine, worker):
            return _SCALAR_FALLBACK.eligible_positions(
                engine, worker, allowed, ordered
            )
        np = load_numpy()
        positions, _ = self._eligible_with_acc(
            engine, np, worker, allowed, sort=ordered
        )
        return positions

    def has_candidates(self, engine: "CandidateEngine", worker: "Worker") -> bool:
        if engine.mode == "generic" or self._small_query(engine, worker):
            return _SCALAR_FALLBACK.has_candidates(engine, worker)
        np = load_numpy()
        positions, d2 = self._candidate_block(engine, np, worker)
        if not len(positions):
            return False
        eligible, _ = self._eligibility_mask(engine, np, worker, positions, d2)
        return bool(eligible.any())

    def topk(
        self,
        engine: "CandidateEngine",
        worker: "Worker",
        k: int,
        mode: str = "acc_star",
        completed: Optional[Sequence[bool]] = None,
        need: Optional[Sequence[float]] = None,
    ) -> List[int]:
        # Validate before any path forks so every backend fails alike
        # (the vector path would otherwise hit an opaque numpy indexing
        # error on a missing need array).
        if mode not in ("acc_star", "gain", "need"):
            raise ValueError(f"unknown topk mode {mode!r}")
        if mode in ("gain", "need") and need is None:
            raise ValueError(f"topk mode {mode!r} requires a need array")
        if engine.mode == "generic" or self._small_query(engine, worker):
            return _SCALAR_FALLBACK.topk(engine, worker, k, mode, completed, need)
        np = load_numpy()
        # Unsorted pass; only the (tiny) preselected superset needs the
        # oracle ordering, so the full-set sort is skipped.  The completed
        # filter lands *before* the accuracy evaluation (the two filters
        # commute) so finished tasks cost no sigmoid work.
        positions, d2 = self._candidate_block(engine, np, worker)
        if completed is not None and len(positions):
            keep = ~np.asarray(completed)[positions]
            positions, d2 = positions[keep], d2[keep]
        if len(positions):
            eligible, acc = self._eligibility_mask(
                engine, np, worker, positions, d2
            )
            positions, acc = positions[eligible], acc[eligible]
        else:
            acc = d2
        count = len(positions)
        if count == 0:
            return []
        if count > k:
            if mode == "acc_star":
                weight = 2.0 * acc - 1.0
                scores = weight * weight
            elif mode == "gain":
                weight = 2.0 * acc - 1.0
                scores = np.minimum(weight * weight, np.asarray(need)[positions])
            else:  # "need" — the mode set was validated on entry
                scores = np.asarray(need)[positions]
            kth = np.partition(scores, count - k)[count - k]
            positions = positions[scores >= kth - TOPK_SCORE_MARGIN]
        if engine.mode == "grid":
            if engine.positions_id_ordered:
                superset = np.sort(positions).tolist()
            else:
                ids = engine.numpy_mirrors(np).task_ids[positions]
                superset = positions[np.argsort(ids)].tolist()
        else:
            # Scan blocks stream in posting order — the oracle push order
            # — and every filter above preserved it.
            superset = positions.tolist()
        # Rescore the superset through the shared scalar heap: pop order is
        # the oracle's by construction.  The ``completed`` filter already
        # happened, so it is not re-applied.
        return PythonCandidateBackend.rescore_topk(
            engine, worker, superset, k, mode, None, need
        )

    def count_eligible(self, engine: "CandidateEngine") -> Sequence[int]:
        if engine.mode == "generic":
            return _SCALAR_FALLBACK.count_eligible(engine)
        np = load_numpy()
        counts = np.zeros(engine.num_tasks, dtype=np.int64)
        for worker in engine.instance.workers:
            positions = self.eligible_positions(engine, worker, None, False)
            if len(positions):
                np.add.at(counts, positions, 1)
        return counts
