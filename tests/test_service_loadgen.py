"""Tests for the replayable load generator."""

import pytest

from repro.core.accuracy import SigmoidDistanceAccuracy
from repro.service.loadgen import BurstWindow, ReplayConfig, build_workload
from repro.service.sharding import ShardPlan


def small_config(**overrides):
    defaults = dict(
        seed=11,
        city_cols=2,
        city_rows=2,
        city_spacing=1000.0,
        city_radius=50.0,
        campaigns_per_city=2,
        tasks_per_campaign=5,
        num_workers=600,
    )
    defaults.update(overrides)
    return ReplayConfig(**defaults)


class TestDeterminism:
    def test_same_config_same_workload(self):
        first = build_workload(small_config())
        second = build_workload(small_config())
        assert [c.tasks for c in first.campaigns] == [
            c.tasks for c in second.campaigns
        ]
        assert first.workers() == second.workers()

    def test_stream_is_replayable_from_the_same_workload(self):
        workload = build_workload(small_config())
        assert list(workload.worker_stream()) == list(workload.worker_stream())

    def test_different_seeds_differ(self):
        first = build_workload(small_config(seed=1))
        second = build_workload(small_config(seed=2))
        assert first.workers() != second.workers()


class TestCampaigns:
    def test_shape_and_unique_task_ids(self):
        workload = build_workload(small_config())
        assert len(workload.campaigns) == 8
        all_ids = [
            t.task_id for c in workload.campaigns for t in c.tasks
        ]
        assert len(set(all_ids)) == len(all_ids) == 40
        assert workload.campaign_city == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_tasks_stay_within_their_city_radius(self):
        config = small_config()
        workload = build_workload(config)
        for campaign, city in zip(workload.campaigns, workload.campaign_city):
            center = config.city_center(city)
            for task in campaign.tasks:
                assert task.location.distance_to(center) <= config.city_radius

    def test_campaigns_pin_to_geo_shards(self):
        """The generated geometry matches the sharding pinning rule."""
        config = small_config()
        workload = build_workload(config)
        plan = ShardPlan.for_region(config.bounds, cols=2, rows=2)
        shards = [plan.shard_for_instance(c) for c in workload.campaigns]
        assert shards == [0, 0, 1, 1, 2, 2, 3, 3]


class TestStream:
    def test_indices_and_timestamps_increase(self):
        workload = build_workload(small_config())
        workers = workload.workers()
        assert [w.index for w in workers] == list(range(1, 601))
        times = [w.arrival_time for w in workers]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_burst_biases_the_hot_city(self):
        config = small_config(
            num_workers=4000,
            bursts=(BurstWindow(0.25, 0.5, hot_city=3, city_bias=50.0),),
        )
        workers = build_workload(config).workers()
        in_burst = [w for w in workers if 1000 <= w.index - 1 < 2000]
        outside = [w for w in workers if not 1000 <= w.index - 1 < 2000]
        hot_in = sum(1 for w in in_burst if w.metadata["city"] == 3)
        hot_out = sum(1 for w in outside if w.metadata["city"] == 3)
        assert hot_in / len(in_burst) > 0.8
        assert hot_out / len(outside) < 0.4

    def test_burst_intensity_compresses_arrival_gaps(self):
        calm = build_workload(small_config(num_workers=2000)).workers()
        bursty = build_workload(
            small_config(
                num_workers=2000,
                bursts=(BurstWindow(0.4, 0.6, hot_city=0, intensity=10.0),),
            )
        ).workers()

        def window_span(workers):
            inside = [w.arrival_time for w in workers
                      if 800 <= w.index - 1 < 1200]
            return inside[-1] - inside[0]

        assert window_span(bursty) < window_span(calm) / 3.0

    def test_workers_clear_the_spam_threshold(self):
        config = small_config(accuracy_range=(0.5, 0.9))
        workers = build_workload(config).workers()
        assert all(w.accuracy >= 0.66 for w in workers)

    def test_accuracy_model_is_the_paper_default(self):
        workload = build_workload(small_config())
        assert isinstance(
            workload.campaigns[0].accuracy_model, SigmoidDistanceAccuracy
        )


class TestValidation:
    def test_bad_burst_window(self):
        with pytest.raises(ValueError):
            BurstWindow(0.5, 0.4, hot_city=0)
        with pytest.raises(ValueError):
            small_config(bursts=(BurstWindow(0.1, 0.2, hot_city=99),))

    def test_bad_grid(self):
        with pytest.raises(ValueError):
            small_config(city_cols=0)
        with pytest.raises(ValueError):
            small_config(diurnal_amplitude=1.5)
