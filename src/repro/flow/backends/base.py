"""The contract every flow-kernel backend implements.

A backend is the *inner loop* of :func:`repro.flow.kernel.solve_mcf`: the
successive-shortest-path augmentation cycle over an
:class:`~repro.flow.kernel.ArcArena`.  Everything around that loop —
argument validation, initial Johnson potentials, the
:class:`~repro.flow.kernel.KernelFlowResult` — stays in ``solve_mcf``, so a
backend only has to speak arrays.

The conformance bar is strict: **every backend must produce bit-identical
flows and potentials** for the same inputs.  The kernel's determinism
guarantees (heap ties fall back to the node id, relaxations use strict
``<`` with the shared ``1e-15`` tolerance, arcs are scanned in stable
arc-insertion order, and floating-point expressions are evaluated in the
same association order) are part of the contract, not an implementation
detail — MCF-LTC arrangements are pinned byte-for-byte across backends by
the conformance suite.  See ``docs/flow_kernel.md`` for the full write-up.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.flow.kernel import ArcArena

#: Shared strict-improvement tolerance for Dijkstra relaxations.  Part of
#: the backend contract: all backends must compare with the same epsilon or
#: their tie-breaking (and therefore their arrangements) could diverge.
RELAX_EPS = 1e-15


class KernelBackend(ABC):
    """One implementation of the SSPA augmentation loop.

    Subclasses register an instance with
    :func:`repro.flow.backends.register_backend`; callers never instantiate
    backends directly — they name them (``backend="numpy"``, the
    ``REPRO_FLOW_BACKEND`` environment variable, or the ``backend=`` solver
    spec parameter) and :func:`repro.flow.backends.resolve_backend` hands
    out the shared instance.  Backends must therefore be stateless between
    :meth:`run` calls.
    """

    #: Registry name (what ``backend=`` strings refer to).
    name: str = ""

    def is_available(self) -> bool:
        """Whether the backend can run in this environment.

        The default assumes no optional dependencies.  Backends that need
        one (e.g. numpy) override this; ``resolve_backend("auto")`` skips
        unavailable backends, while naming one explicitly raises
        :class:`~repro.flow.exceptions.BackendUnavailableError`.
        """
        return True

    @abstractmethod
    def run(
        self,
        graph: "ArcArena",
        source: int,
        sink: int,
        target: float,
        potentials: List[float],
    ) -> Tuple[int, int, List[float]]:
        """Route up to ``target`` units of min-cost flow; return the outcome.

        Parameters
        ----------
        graph:
            The arc arena.  The backend mutates ``graph.flow`` in place
            (twins kept in lockstep, ``flow[a ^ 1] == -flow[a]``) and must
            leave every other arena field untouched.
        source, sink:
            Validated, distinct node ids.
        target:
            Unit budget for this call: a non-negative integer, or
            ``math.inf`` for a min-cost *max*-flow.
        potentials:
            Johnson potentials, one per node, that are exact shortest-path
            distances from ``source`` under reduced costs in the arena's
            *current* residual graph (infinite for unreachable nodes).  The
            backend may mutate the list.

        Returns
        -------
        ``(routed, augmentations, potentials)``: units routed by this call,
        number of augmenting paths used, and the final potentials (valid
        warm-start input for a follow-up ``run`` on the same arena).

        Invariants
        ----------
        * Exactness: the routed flow is a minimum-cost way to send
          ``routed`` units, and ``routed`` is maximal subject to ``target``.
        * Determinism: identical inputs give bit-identical ``graph.flow``
          and ``potentials`` across *all* registered backends.
        * On return the arena satisfies capacity and conservation
          constraints (checkable with
          :func:`repro.flow.validate.validate_arena_flow`).
        """
        raise NotImplementedError
