"""Tests for task TTL expiry: arrangement abandonment through to dispatch."""

import pytest

from repro.algorithms.aam import AAMSolver
from repro.algorithms.laf import LAFSolver
from repro.algorithms.registry import build_solver, solver_entry
from repro.core.instance import LTCInstance
from repro.core.session import SessionStateError
from repro.core.task import Task
from repro.core.worker import Worker
from repro.geo.point import Point
from repro.service import DispatcherMetrics, LTCDispatcher


def small_instance(num_tasks=4, num_workers=30, spacing=12.0):
    tasks = [
        Task(task_id=i, location=Point(spacing * i, 0.0))
        for i in range(num_tasks)
    ]
    workers = [
        Worker(
            index=index,
            location=Point(spacing * ((index - 1) % num_tasks), 1.0),
            accuracy=0.92,
            capacity=2,
        )
        for index in range(1, num_workers + 1)
    ]
    return LTCInstance(tasks=tasks, workers=workers, error_rate=0.2)


class TestArrangementAbandonment:
    def test_abandoned_tasks_leave_the_open_set(self):
        instance = small_instance()
        arrangement = instance.new_arrangement()
        arrangement.abandon_tasks([1, 3])
        assert arrangement.abandoned_tasks == [1, 3]
        assert arrangement.is_task_abandoned(1)
        assert set(arrangement.uncompleted_tasks()) == {0, 2}

    def test_abandoned_tasks_refuse_assignments(self):
        instance = small_instance()
        arrangement = instance.new_arrangement()
        arrangement.abandon_tasks([0])
        worker = instance.workers[0]
        assert not arrangement.can_assign(worker, instance.tasks[0])
        with pytest.raises(KeyError):
            arrangement.assign(worker, instance.tasks[0])

    def test_completed_tasks_cannot_be_abandoned(self):
        instance = small_instance(num_tasks=1)
        arrangement = instance.new_arrangement()
        for worker in instance.workers:
            if arrangement.is_task_complete(0):
                break
            arrangement.assign(worker, instance.tasks[0])
        with pytest.raises(ValueError):
            arrangement.abandon_tasks([0])

    def test_unknown_ids_raise_and_repeats_are_idempotent(self):
        arrangement = small_instance().new_arrangement()
        with pytest.raises(KeyError):
            arrangement.abandon_tasks([99])
        arrangement.abandon_tasks([2])
        arrangement.abandon_tasks([2])
        assert arrangement.abandoned_tasks == [2]

    def test_summary_separates_abandoned_from_completed(self):
        instance = small_instance()
        arrangement = instance.new_arrangement()
        arrangement.abandon_tasks([0, 1])
        summary = arrangement.summary()
        assert summary["tasks_abandoned"] == 2.0
        assert summary["tasks_completed"] == 0.0

    def test_abandonment_completes_the_arrangement(self):
        instance = small_instance()
        arrangement = instance.new_arrangement()
        arrangement.abandon_tasks([0, 1, 2, 3])
        assert arrangement.uncompleted_tasks() == []


@pytest.mark.parametrize("solver_cls", [LAFSolver, AAMSolver])
class TestSolverExpiry:
    def test_expired_tasks_get_no_further_assignments(self, solver_cls):
        instance = small_instance()
        solver = solver_cls()
        solver.start(instance)
        solver.observe(instance.workers[0])
        expired = solver.expire_tasks([0, 1, 2, 3])
        for worker in instance.workers[1:6]:
            assert solver.observe(worker) == []
        assert set(expired) | {
            t for t in range(4) if solver.arrangement.is_task_complete(t)
        } == {0, 1, 2, 3}

    def test_expiry_skips_completed_and_repeated_ids(self, solver_cls):
        # Task 0 is under the worker cluster; task 1 is out of reach and
        # can never complete.
        instance = LTCInstance(
            tasks=[
                Task(task_id=0, location=Point(0.0, 0.0)),
                Task(task_id=1, location=Point(400.0, 0.0)),
            ],
            workers=[
                Worker(index=index, location=Point(0.0, 1.0),
                       accuracy=0.92, capacity=2)
                for index in range(1, 41)
            ],
            error_rate=0.2,
        )
        solver = solver_cls()
        solver.start(instance)
        for worker in instance.workers:
            if solver.arrangement.is_task_complete(0):
                break
            solver.observe(worker)
        assert solver.arrangement.is_task_complete(0)
        first = solver.expire_tasks([0, 1])
        assert first == [1]  # task 0 completed, only task 1 abandons
        assert solver.expire_tasks([0, 1]) == []  # second sweep is a no-op

    def test_unknown_ids_raise(self, solver_cls):
        solver = solver_cls()
        solver.start(small_instance())
        with pytest.raises(KeyError):
            solver.expire_tasks([123])

    def test_serving_continues_correctly_after_expiry(self, solver_cls):
        """Post-expiry decisions stay consistent: assignments only target
        open tasks and the arrangement stays violation-free."""
        instance = small_instance(num_tasks=6, num_workers=60, spacing=8.0)
        solver = solver_cls()
        solver.start(instance)
        for count, worker in enumerate(instance.workers, start=1):
            if count == 10:
                solver.expire_tasks([1, 4])
            assignments = solver.observe(worker)
            if count >= 10:
                assert all(a.task_id not in (1, 4) for a in assignments)
        workers = {w.index: w for w in instance.workers}
        assert solver.arrangement.constraint_violations(workers) == []


class TestSessionExpiry:
    def test_snapshot_reports_abandonment(self):
        instance = small_instance()
        session = AAMSolver().open_session(instance)
        session.on_worker(instance.workers[0])
        expired = session.expire_tasks([2, 3])
        assert expired == [2, 3]
        snapshot = session.snapshot()
        assert snapshot.tasks_abandoned == 2
        assert snapshot.tasks_total == 4
        assert snapshot.tasks_remaining == 4 - snapshot.tasks_completed - 2

    def test_expiring_every_open_task_completes_the_session(self):
        instance = small_instance()
        session = LAFSolver().open_session(instance)
        session.expire_tasks([0, 1, 2, 3])
        assert session.is_complete
        result = session.result()
        assert result.arrangement.abandoned_tasks == [0, 1, 2, 3]

    def test_replay_sessions_refuse_expiry(self):
        instance = small_instance()
        session = build_solver("MCF-LTC").open_session(instance)
        with pytest.raises(SessionStateError):
            session.expire_tasks([0])

    def test_registry_capability_flag(self):
        assert solver_entry("LAF").capabilities.task_expiry
        assert solver_entry("AAM").capabilities.task_expiry
        assert not solver_entry("Random").capabilities.task_expiry
        assert not solver_entry("MCF-LTC").capabilities.task_expiry


class TestDispatcherExpiry:
    def test_expired_tasks_leave_the_routing_snapshot(self):
        far = LTCInstance(
            tasks=[
                Task(task_id=0, location=Point(0.0, 0.0)),
                Task(task_id=1, location=Point(400.0, 0.0)),
            ],
            workers=[Worker(index=1, location=Point(0.0, 0.0),
                            accuracy=0.9, capacity=2)],
            error_rate=0.2,
        )
        dispatcher = LTCDispatcher(default_solver="LAF")
        sid = dispatcher.submit_instance(far)
        assert dispatcher.expire_tasks(sid, [1]) == [1]
        # A worker near only the expired task no longer routes anywhere.
        deliveries = dispatcher.feed_worker(
            Worker(index=1, location=Point(400.0, 0.0),
                   accuracy=0.9, capacity=2)
        )
        assert deliveries == {}
        assert dispatcher.metrics.workers_unrouted == 1
        assert dispatcher.metrics.tasks_expired == 1

    def test_expiry_can_complete_a_session(self):
        instance = small_instance()
        dispatcher = LTCDispatcher(default_solver="AAM")
        sid = dispatcher.submit_instance(instance)
        dispatcher.expire_tasks(sid, [0, 1, 2, 3])
        assert dispatcher.poll()[sid].complete
        assert dispatcher.metrics.sessions_completed == 1
        # Completed-by-expiry sessions stop receiving traffic.
        deliveries = dispatcher.feed_worker(instance.workers[0])
        assert deliveries == {}


class TestMetricsMerge:
    def test_merged_sums_every_counter(self):
        first = DispatcherMetrics(workers_fed=10, workers_unrouted=2,
                                  assignments_made=7, busy_seconds=0.5)
        second = DispatcherMetrics(workers_fed=30, workers_unrouted=6,
                                   assignments_made=21, busy_seconds=1.5)
        merged = DispatcherMetrics.merged([first, second])
        assert merged.workers_fed == 40
        assert merged.workers_unrouted == 8
        assert merged.assignments_made == 28
        assert merged.busy_seconds == pytest.approx(2.0)
        # Derived ratios recompute over the sums.
        assert merged.routed_fraction == pytest.approx(32 / 40)
        assert merged.throughput_per_second == pytest.approx(20.0)
        # Merging mutates neither input.
        assert first.workers_fed == 10 and second.workers_fed == 30

    def test_merge_is_in_place_and_chains(self):
        total = DispatcherMetrics()
        total.merge(DispatcherMetrics(tasks_expired=3)).merge(
            DispatcherMetrics(tasks_expired=4)
        )
        assert total.tasks_expired == 7

    def test_summary_includes_expiry_counter(self):
        assert DispatcherMetrics(tasks_expired=5).summary()["tasks_expired"] == 5.0
