"""Microbenchmark: candidate-engine backends vs the pre-engine object scan.

Measures the two hot candidate paths on a dense sigmoid instance (defaults:
2k tasks, worker degree ~100 — comfortably above the paper's sparse ~12,
where the vectorized win is what the north star's traffic needs):

* **online** — the per-arrival candidate path of the online solvers: a full
  LAF and AAM drive to completion, arrival by arrival, through

  - ``legacy`` — the retained pre-engine observe loops
    (:mod:`repro.core.candidates_legacy`): dict-grid query, python ``Task``
    objects, one ``math.exp`` per pair, plus AAM's O(T) remaining rescan;
  - ``python`` — the engine's scalar backend (CSR rows + inlined sigmoid +
    incremental AAM stats);
  - ``numpy`` — the vectorized backend (batched gather/filter/``Acc*``,
    ``np.partition`` top-k preselection).

* **pairs** — the per-batch arc emission of the MCF-LTC reduction:
  ``list(finder.eligible_pairs(batch, uncompleted_ids))`` over a
  batch-sized worker slice.

Exactness is asserted on every case: all implementations must produce
identical arrangements / identical pair streams.  Timings are medians over
interleaved repeats; results are written as one JSON report — by default
to ``BENCH_candidates.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_candidates.py
    PYTHONPATH=src python benchmarks/bench_candidates.py \
        --tasks 300 --workers 500 --repeats 2 \
        --output benchmarks/results/candidates_smoke.json
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import random
import statistics
import sys
import time
from pathlib import Path

from repro.algorithms.aam import AAMSolver
from repro.algorithms.laf import LAFSolver
from repro.core.candidate_engine import available_candidate_backends
from repro.core.candidates import CandidateFinder
from repro.core.candidates_legacy import (
    LegacyCandidateFinder,
    legacy_aam_observe,
    legacy_laf_observe,
)
from repro.core.instance import LTCInstance
from repro.core.task import Task
from repro.core.worker import Worker
from repro.geo.point import Point

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_candidates.json"


def build_instance(num_tasks: int, num_workers: int, box: float, seed: int,
                   capacity: int, error_rate: float) -> LTCInstance:
    """A dense urban-style instance: uniform tasks, workers mostly inside."""
    rng = random.Random(seed)
    tasks = [
        Task(task_id=i, location=Point(rng.uniform(0, box), rng.uniform(0, box)))
        for i in range(num_tasks)
    ]
    workers = [
        Worker(
            index=index,
            location=Point(rng.uniform(-0.05 * box, 1.05 * box),
                           rng.uniform(-0.05 * box, 1.05 * box)),
            accuracy=rng.uniform(0.72, 0.98),
            capacity=capacity,
        )
        for index in range(1, num_workers + 1)
    ]
    return LTCInstance(tasks=tasks, workers=workers, error_rate=error_rate,
                       name="bench_candidates")


def mean_degree(instance: LTCInstance, sample: int = 200) -> float:
    finder = CandidateFinder(instance, backend="python")
    workers = instance.workers[:sample]
    return sum(len(finder.candidates(w)) for w in workers) / len(workers)


# ------------------------------------------------------------------ drivers
# Each driver runs one full online solve to completion and returns the
# assignment list (the exactness witness) plus how many arrivals it consumed.


def drive_legacy(instance: LTCInstance, observe) -> tuple:
    arrangement = instance.new_arrangement()
    finder = LegacyCandidateFinder(instance)
    arrivals = 0
    open_tasks = instance.num_tasks
    finished = set()
    for worker in instance.workers:
        if open_tasks == 0:
            break
        assigned_ids = observe(instance, arrangement, finder, worker)
        arrivals += 1
        # Completion is tracked incrementally (identically in both
        # drivers): an O(T) is_complete() poll per arrival would dominate
        # the candidate path being measured for every implementation.
        for task_id in assigned_ids:
            if task_id not in finished and arrangement.is_task_complete(task_id):
                finished.add(task_id)
                open_tasks -= 1
    return arrangement.assignments, arrivals, open_tasks == 0


def drive_engine(instance: LTCInstance, solver_cls, backend: str) -> tuple:
    solver = solver_cls(candidates=backend)
    solver.start(instance)
    arrangement = solver.arrangement
    arrivals = 0
    open_tasks = instance.num_tasks
    finished = set()
    for worker in instance.workers:
        if open_tasks == 0:
            break
        assignments = solver.observe(worker)
        arrivals += 1
        for assignment in assignments:
            task_id = assignment.task_id
            if task_id not in finished and arrangement.is_task_complete(task_id):
                finished.add(task_id)
                open_tasks -= 1
    return arrangement.assignments, arrivals, open_tasks == 0


def bench_online(instance: LTCInstance, repeats: int, backends) -> dict:
    """Time full LAF and AAM drives for every implementation."""
    section = {}
    cases = {
        "LAF": (legacy_laf_observe, LAFSolver),
        "AAM": (legacy_aam_observe, AAMSolver),
    }
    for name, (legacy_observe, solver_cls) in cases.items():
        runners = {"legacy": lambda lo=legacy_observe: drive_legacy(instance, lo)}
        for backend in backends:
            runners[backend] = (
                lambda cls=solver_cls, b=backend: drive_engine(instance, cls, b)
            )
        times = {impl: [] for impl in runners}
        outputs = {}
        # Interleave implementations so background drift hits all equally.
        for _ in range(repeats):
            for impl, runner in runners.items():
                start = time.perf_counter()
                outputs[impl] = runner()
                times[impl].append(time.perf_counter() - start)
        base_assignments, base_arrivals, base_completed = outputs["legacy"]
        for impl, (assignments, arrivals, _) in outputs.items():
            if assignments != base_assignments or arrivals != base_arrivals:
                raise AssertionError(
                    f"{name}/{impl} diverged from the legacy arrangement "
                    f"({len(assignments)} vs {len(base_assignments)} assignments)"
                )
        entry = {
            "arrivals": base_arrivals,
            "assignments": len(base_assignments),
            "completed": base_completed,
        }
        for impl in runners:
            median_s = statistics.median(times[impl])
            entry[f"{impl}_ms_median"] = round(median_s * 1000, 3)
            entry[f"{impl}_us_per_arrival"] = round(
                median_s * 1e6 / max(1, base_arrivals), 2
            )
        legacy_s = statistics.median(times["legacy"])
        for backend in backends:
            backend_s = statistics.median(times[backend])
            entry[f"{backend}_speedup_vs_legacy"] = (
                round(legacy_s / backend_s, 2) if backend_s > 0 else float("inf")
            )
        section[name] = entry
    return section


def bench_selection(instance: LTCInstance, repeats: int, backends,
                    sample: int = 800) -> dict:
    """The candidate path itself: per-arrival selection on a frozen state.

    The full drives above include the arrangement mutation
    (``Arrangement.assign`` re-evaluates the accuracy model per landed
    assignment), which every implementation pays identically and which
    caps the observable end-to-end ratio.  This section isolates what the
    engine replaced: candidate generation + batched ``Acc*`` evaluation +
    top-``K`` selection.  A canonical LAF run is frozen mid-stream
    (realistic mix of completed and open tasks) and each implementation
    answers the *same* ``sample`` of arrivals read-only; outputs are
    asserted identical.
    """
    from repro.structures.topk import TopKHeap

    solver = LAFSolver(candidates="python")
    solver.start(instance)
    consumed = 0
    finished = 0
    finished_ids = set()
    for worker in instance.workers:
        assignments = solver.observe(worker)
        consumed += 1
        for assignment in assignments:
            task_id = assignment.task_id
            if task_id not in finished_ids and solver.arrangement.is_task_complete(
                task_id
            ):
                finished_ids.add(task_id)
                finished += 1
        if finished >= instance.num_tasks // 2:
            break
    arrangement = solver.arrangement
    sample_workers = instance.workers[consumed:consumed + sample]
    capacity = instance.capacity

    legacy_finder = LegacyCandidateFinder(instance)

    def run_legacy():
        selections = []
        for worker in sample_workers:
            heap: TopKHeap = TopKHeap(capacity)
            for task in legacy_finder.candidates(worker):
                if arrangement.is_task_complete(task.task_id):
                    continue
                heap.push(instance.acc_star(worker, task), task)
            selections.append([task.task_id for _, task in heap.pop_all()])
        return selections

    engines = {}
    for backend in backends:
        finder = CandidateFinder(instance, backend=backend)
        engine = finder.engine
        completed = engine.bool_array()
        for task_id in finished_ids:
            completed[engine.position_of[task_id]] = True
        engines[backend] = (engine, completed)

    def run_engine(backend):
        engine, completed = engines[backend]
        return [
            [task.task_id for task in engine.topk_acc_star(worker, capacity, completed)]
            for worker in sample_workers
        ]

    runners = {"legacy": run_legacy}
    for backend in backends:
        runners[backend] = lambda b=backend: run_engine(b)
    times = {impl: [] for impl in runners}
    outputs = {}
    for _ in range(repeats):
        for impl, runner in runners.items():
            start = time.perf_counter()
            outputs[impl] = runner()
            times[impl].append(time.perf_counter() - start)
    baseline = outputs["legacy"]
    for impl, selections in outputs.items():
        if selections != baseline:
            raise AssertionError(f"selection/{impl} diverged from legacy")
    entry = {
        "sample_arrivals": len(sample_workers),
        "frozen_after_arrivals": consumed,
        "completed_tasks": finished,
    }
    for impl in runners:
        median_s = statistics.median(times[impl])
        entry[f"{impl}_ms_median"] = round(median_s * 1000, 3)
        entry[f"{impl}_us_per_arrival"] = round(
            median_s * 1e6 / max(1, len(sample_workers)), 2
        )
    legacy_s = statistics.median(times["legacy"])
    for backend in backends:
        backend_s = statistics.median(times[backend])
        entry[f"{backend}_speedup_vs_legacy"] = (
            round(legacy_s / backend_s, 2) if backend_s > 0 else float("inf")
        )
    return entry


def bench_pairs(instance: LTCInstance, repeats: int, backends,
                batch_size: int) -> dict:
    """Time the batch arc-emission stream (the MCF-LTC reduction's input)."""
    batch = instance.workers[:batch_size]
    # Model a mid-run batch: a quarter of the tasks already completed.
    allowed = {task.task_id for task in instance.tasks
               if task.task_id % 4 != 0}
    legacy = LegacyCandidateFinder(instance)
    finders = {"legacy": legacy}
    for backend in backends:
        finders[backend] = CandidateFinder(instance, backend=backend)
    times = {impl: [] for impl in finders}
    outputs = {}
    for _ in range(repeats):
        for impl, finder in finders.items():
            start = time.perf_counter()
            outputs[impl] = [
                (w.index, t.task_id)
                for w, t in finder.eligible_pairs(batch, allowed)
            ]
            times[impl].append(time.perf_counter() - start)
    baseline = outputs["legacy"]
    for impl, pairs in outputs.items():
        if pairs != baseline:
            raise AssertionError(f"pairs/{impl} diverged from the legacy stream")
    entry = {
        "batch_workers": len(batch),
        "allowed_tasks": len(allowed),
        "pairs": len(baseline),
    }
    for impl in finders:
        median_s = statistics.median(times[impl])
        entry[f"{impl}_ms_median"] = round(median_s * 1000, 3)
    legacy_s = statistics.median(times["legacy"])
    for backend in backends:
        backend_s = statistics.median(times[backend])
        entry[f"{backend}_speedup_vs_legacy"] = (
            round(legacy_s / backend_s, 2) if backend_s > 0 else float("inf")
        )
    return entry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tasks", type=int, default=2000)
    parser.add_argument("--workers", type=int, default=6000,
                        help="length of the arrival stream (drives stop at "
                             "completion)")
    parser.add_argument("--box", type=float, default=None,
                        help="side of the square region (default: sized for "
                             "a worker degree around --degree)")
    parser.add_argument("--degree", type=float, default=260.0,
                        help="target mean candidates per worker when --box "
                             "is not given (the dense-city regime; the "
                             "paper's sparse setup is ~12)")
    parser.add_argument("--capacity", type=int, default=6)
    parser.add_argument("--error-rate", type=float, default=0.14)
    parser.add_argument("--batch-size", type=int, default=400,
                        help="worker slice for the arc-emission section")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--seed", type=int, default=20180416)
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--backends", nargs="+", default=None,
                        help="engine backends to time (default: all available)")
    args = parser.parse_args(argv)

    backends = args.backends
    if backends is None:
        backends = [
            b for b in ("python", "numpy") if b in available_candidate_backends()
        ]

    box = args.box
    if box is None:
        # degree ~= tasks * pi * r^2 / box^2 with r ~= d_max for accurate
        # workers; solve for the box side.
        radius = 29.0
        box = math.sqrt(args.tasks * math.pi * radius * radius / args.degree)
    instance = build_instance(args.tasks, args.workers, box, args.seed,
                              args.capacity, args.error_rate)
    degree = mean_degree(instance)
    print(f"instance: {args.tasks} tasks, {args.workers} workers, "
          f"box={box:.1f}, mean degree={degree:.1f}")

    online = bench_online(instance, args.repeats, backends)
    for name, entry in online.items():
        timings = "  ".join(
            f"{impl}={entry[f'{impl}_ms_median']:>9.2f}ms"
            for impl in ["legacy", *backends]
        )
        speedups = "  ".join(
            f"{b}={entry[f'{b}_speedup_vs_legacy']:>5.2f}x" for b in backends
        )
        print(f"online {name:>4}  arrivals={entry['arrivals']:>5}  {timings}  "
              f"speedup: {speedups}")

    selection = bench_selection(instance, args.repeats, backends)
    timings = "  ".join(
        f"{impl}={selection[f'{impl}_us_per_arrival']:>8.1f}us"
        for impl in ["legacy", *backends]
    )
    speedups = "  ".join(
        f"{b}={selection[f'{b}_speedup_vs_legacy']:>5.2f}x" for b in backends
    )
    print(f"selection    per-arrival  {timings}  speedup: {speedups}")

    pairs = bench_pairs(instance, args.repeats, backends, args.batch_size)
    timings = "  ".join(
        f"{impl}={pairs[f'{impl}_ms_median']:>9.2f}ms"
        for impl in ["legacy", *backends]
    )
    speedups = "  ".join(
        f"{b}={pairs[f'{b}_speedup_vs_legacy']:>5.2f}x" for b in backends
    )
    print(f"pairs  emit  pairs={pairs['pairs']:>7}  {timings}  "
          f"speedup: {speedups}")

    report = {
        "benchmark": "candidates",
        "description": (
            "Candidate-generation hot paths: the struct-of-arrays engine "
            "(python scalar and numpy vectorized backends) vs the retained "
            "pre-engine object scan (dict grid, per-pair math.exp, AAM's "
            "O(T) remaining rescan). 'online' times full LAF/AAM drives to "
            "completion arrival by arrival; 'pairs' times one batch of "
            "eligible-pair arc emission for the MCF-LTC reduction. All "
            "implementations are asserted to produce identical "
            "arrangements / pair streams."
        ),
        "config": {
            "tasks": args.tasks,
            "workers": args.workers,
            "box": round(box, 2),
            "mean_degree": round(degree, 1),
            "capacity": args.capacity,
            "error_rate": args.error_rate,
            "batch_size": args.batch_size,
            "repeats": args.repeats,
            "seed": args.seed,
            "backends": backends,
            "python": platform.python_version(),
        },
        "online": online,
        "selection": selection,
        "pairs": pairs,
        "headline_speedups": {
            backend: {
                "LAF": online["LAF"][f"{backend}_speedup_vs_legacy"],
                "AAM": online["AAM"][f"{backend}_speedup_vs_legacy"],
                "selection": selection[f"{backend}_speedup_vs_legacy"],
                "pairs": pairs[f"{backend}_speedup_vs_legacy"],
            }
            for backend in backends
        },
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=1) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
