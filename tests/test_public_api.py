"""Tests for the top-level public API surface."""

import importlib

import pytest

import repro


class TestPublicAPI:
    def test_version_is_exposed(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_core_workflow_through_top_level_imports(self):
        instance = repro.generate_synthetic_instance(repro.SyntheticConfig(
            num_tasks=5, num_workers=120, capacity=4, error_rate=0.2,
            grid_size=70.0, seed=1,
        ))
        result = repro.get_solver("LAF").solve(instance)
        assert isinstance(result, repro.SolveResult)
        assert result.completed

    def test_available_solvers_lists_paper_algorithms(self):
        names = repro.available_solvers()
        for expected in ("MCF-LTC", "LAF", "AAM", "Base-off", "Random"):
            assert expected in names

    def test_experiment_registry_exposed(self):
        assert "fig3_tasks" in repro.list_experiments()
        assert repro.get_experiment("fig3_tasks").sweep_parameter == "|T|"

    def test_subpackages_importable(self):
        for module in (
            "repro.core", "repro.algorithms", "repro.flow", "repro.geo",
            "repro.structures", "repro.quality", "repro.datagen",
            "repro.simulation", "repro.experiments",
        ):
            importlib.import_module(module)

    def test_city_presets_exposed(self):
        assert repro.NEW_YORK.city == "New York"
        assert repro.TOKYO.city == "Tokyo"


class TestExamplesAreImportable:
    """The example scripts must at least import and expose a main()."""

    @pytest.mark.parametrize("module_name", [
        "quickstart", "facebook_poi_campaign", "online_checkin_stream",
        "offline_vs_online_tradeoff",
    ])
    def test_example_has_main(self, module_name):
        import sys
        from pathlib import Path

        examples_dir = Path(__file__).resolve().parent.parent / "examples"
        sys.path.insert(0, str(examples_dir))
        try:
            module = importlib.import_module(module_name)
            assert callable(getattr(module, "main"))
        finally:
            sys.path.remove(str(examples_dir))

    def test_running_example_walkthrough_is_fast_enough_for_ci(self, capsys):
        """The Facebook POI example runs end to end in-process."""
        import sys
        from pathlib import Path

        examples_dir = Path(__file__).resolve().parent.parent / "examples"
        sys.path.insert(0, str(examples_dir))
        try:
            module = importlib.import_module("facebook_poi_campaign")
            module.main()
        finally:
            sys.path.remove(str(examples_dir))
        output = capsys.readouterr().out
        assert "MCF-LTC: latency = 7" in output
        assert "AAM: latency = 6" in output
        assert "LAF: latency = 8" in output
