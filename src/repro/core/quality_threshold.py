"""Quality threshold derived from Hoeffding's inequality.

Definition 4 of the paper aggregates worker answers by weighted majority
voting with weights ``2*Acc(w, t) - 1``.  By Hoeffding's inequality, if

    sum_{w in W_t} (2*Acc(w, t) - 1)^2  >=  2 * ln(1 / epsilon)

then the probability that the vote is wrong is below ``epsilon``.  The
right-hand side is the quality threshold ``delta`` used everywhere in the
paper; this module computes it and its inverse.
"""

from __future__ import annotations

import math

#: Workers with historical accuracy below this value are treated as spam and
#: ignored by the platform (Sec. II-A, assumption (i) on workers).
MIN_WORKER_ACCURACY = 0.66

#: Lower bound on Acc*(w, t) used by the paper's bound analysis:
#: (2 * 0.66 - 1)^2 = 0.1024 > 0.1 (Theorem 2 uses the 0.1 floor).
MIN_ACC_STAR = 0.1


def quality_threshold(error_rate: float) -> float:
    """The threshold ``delta = 2 * ln(1 / epsilon)`` for a tolerable error rate.

    Parameters
    ----------
    error_rate:
        The tolerable error rate ``epsilon`` in ``(0, 1)``.

    Returns
    -------
    float
        ``delta``; a task is completed once its accumulated ``Acc*`` reaches
        this value.
    """
    if not 0.0 < error_rate < 1.0:
        raise ValueError("error rate must be in the open interval (0, 1)")
    return 2.0 * math.log(1.0 / error_rate)


def error_rate_for_threshold(delta: float) -> float:
    """The tolerable error rate implied by a threshold ``delta`` (inverse map)."""
    if delta <= 0:
        raise ValueError("delta must be positive")
    return math.exp(-delta / 2.0)
