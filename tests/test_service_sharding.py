"""Tests for the geographic sharding runtime (plan, queues, dispatcher)."""

import threading

import pytest

from repro.core.accuracy import ConstantAccuracy, SigmoidDistanceAccuracy
from repro.core.instance import LTCInstance
from repro.core.task import Task
from repro.core.worker import Worker
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point
from repro.service import (
    BoundedArrivalQueue,
    DuplicateSessionError,
    LTCDispatcher,
    QueueClosedError,
    ShardAffinityError,
    ShardedDispatcher,
    ShardPlan,
    UnknownSessionError,
)
from repro.service.sharding.plan import instance_reach_radius, tasks_reach_bounds

BOUNDS = BoundingBox(0.0, 0.0, 2000.0, 2000.0)

#: City centres aligned with the cells of a 2x2 plan over BOUNDS.
CENTERS = [(500.0, 500.0), (1500.0, 500.0), (500.0, 1500.0), (1500.0, 1500.0)]


def campaign(cx, cy, tid0=0, num_tasks=3, spread=5.0, **instance_kwargs):
    tasks = [
        Task(task_id=tid0 + i, location=Point(cx + spread * i, cy))
        for i in range(num_tasks)
    ]
    workers = [Worker(index=1, location=Point(cx, cy), accuracy=0.9, capacity=2)]
    instance_kwargs.setdefault("error_rate", 0.2)
    return LTCInstance(tasks=tasks, workers=workers, **instance_kwargs)


def city_stream(num_workers, centers=CENTERS, spread=10.0, seed=0):
    """A deterministic merged stream cycling through city centres."""
    workers = []
    for index in range(1, num_workers + 1):
        cx, cy = centers[(index + seed) % len(centers)]
        jitter = (index * 7) % 11 - 5
        workers.append(
            Worker(
                index=index,
                location=Point(cx + jitter, cy + spread * ((index % 3) - 1) / 3.0),
                accuracy=0.9,
                capacity=2,
            )
        )
    return workers


class TestShardPlan:
    def test_grid_geometry_and_ids(self):
        plan = ShardPlan(BOUNDS, cols=2, rows=2)
        assert plan.num_geo_shards == 4
        assert plan.overflow_shard == 4
        assert plan.num_shards == 5
        assert plan.cell(plan.overflow_shard) is None
        cell0 = plan.cell(0)
        assert (cell0.min_x, cell0.min_y, cell0.max_x, cell0.max_y) == (
            0.0, 0.0, 1000.0, 1000.0,
        )
        # Row-major: shard 1 is east of shard 0, shard 2 is north of it.
        assert plan.cell(1).min_x == 1000.0
        assert plan.cell(2).min_y == 1000.0
        with pytest.raises(ValueError):
            plan.cell(5)

    def test_shard_of_point_covers_and_clamps(self):
        plan = ShardPlan(BOUNDS, cols=2, rows=2)
        assert plan.shard_of_point(Point(10.0, 10.0)) == 0
        assert plan.shard_of_point(Point(1999.0, 10.0)) == 1
        assert plan.shard_of_point(Point(10.0, 1999.0)) == 2
        assert plan.shard_of_point(Point(1500.0, 1500.0)) == 3
        # The outer border belongs to the edge cells; outside points clamp.
        assert plan.shard_of_point(Point(2000.0, 2000.0)) == 3
        assert plan.shard_of_point(Point(-50.0, 5000.0)) == 2

    def test_campaign_pins_to_its_cell(self):
        plan = ShardPlan(BOUNDS, cols=2, rows=2)
        for shard_id, (cx, cy) in enumerate(CENTERS):
            assert plan.shard_for_instance(campaign(cx, cy)) == shard_id

    def test_spanning_campaign_goes_to_overflow(self):
        plan = ShardPlan(BOUNDS, cols=2, rows=2)
        # Tasks straddling the vertical midline span two cells.
        tasks = [
            Task(task_id=0, location=Point(980.0, 500.0)),
            Task(task_id=1, location=Point(1020.0, 500.0)),
        ]
        workers = [Worker(index=1, location=Point(1000.0, 500.0),
                          accuracy=0.9, capacity=2)]
        spanning = LTCInstance(tasks=tasks, workers=workers, error_rate=0.2)
        assert plan.shard_for_instance(spanning) == plan.overflow_shard
        # A reach box poking outside the plan bounds also overflows.
        near_edge = campaign(10.0, 10.0)
        assert plan.shard_for_instance(near_edge) == plan.overflow_shard

    def test_unbounded_reach_goes_to_overflow(self):
        plan = ShardPlan(BOUNDS, cols=2, rows=2)
        constant = campaign(500.0, 500.0, accuracy_model=ConstantAccuracy(0.9))
        assert instance_reach_radius(constant) is None
        assert tasks_reach_bounds(constant) is None
        assert plan.shard_for_instance(constant) == plan.overflow_shard

    def test_reach_radius_bounds_every_worker(self):
        instance = campaign(500.0, 500.0)
        radius = instance_reach_radius(instance)
        model = instance.accuracy_model
        assert isinstance(model, SigmoidDistanceAccuracy)
        # A perfect worker just beyond the radius is ineligible everywhere.
        task = instance.tasks[0]
        worker = Worker(
            index=1,
            location=Point(task.location.x + radius + 1.0, task.location.y),
            accuracy=1.0,
            capacity=1,
        )
        assert model.accuracy(worker, task) < instance.min_assignable_accuracy

    def test_for_campaigns_covers_every_reach_box(self):
        instances = [campaign(cx, cy, tid0=10 * i)
                     for i, (cx, cy) in enumerate(CENTERS)]
        plan = ShardPlan.for_campaigns(instances, cols=2)
        for instance in instances:
            assert plan.shard_for_instance(instance) != plan.overflow_shard
        with pytest.raises(ValueError):
            ShardPlan.for_campaigns(
                [campaign(500.0, 500.0, accuracy_model=ConstantAccuracy(0.9))]
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardPlan(BOUNDS, cols=0)
        with pytest.raises(ValueError):
            ShardPlan(BoundingBox(0.0, 0.0, 0.0, 10.0))


class TestBoundedArrivalQueue:
    def test_fifo_and_counters(self):
        queue = BoundedArrivalQueue(capacity=4)
        for item in "abc":
            assert queue.put(item)
        assert [queue.get() for _ in range(3)] == list("abc")
        for _ in range(3):
            queue.task_done()
        assert queue.accepted == 3
        assert queue.processed == 3
        assert queue.shed == 0
        assert queue.join(timeout=0.1)

    def test_drop_oldest_evicts_head(self):
        queue = BoundedArrivalQueue(capacity=2, policy="drop-oldest")
        assert queue.put("a") and queue.put("b") and queue.put("c")
        assert queue.evicted == 1
        assert queue.accepted == 3
        assert queue.shed == 1
        assert queue.get() == "b"
        assert queue.get() == "c"

    def test_reject_refuses_new_arrival(self):
        queue = BoundedArrivalQueue(capacity=2, policy="reject")
        assert queue.put("a") and queue.put("b")
        assert not queue.put("c")
        assert queue.rejected == 1
        assert queue.shed == 1
        assert queue.get() == "a"

    def test_block_policy_waits_for_space(self):
        queue = BoundedArrivalQueue(capacity=1, policy="block")
        queue.put("a")
        admitted = []

        def producer():
            admitted.append(queue.put("b"))

        thread = threading.Thread(target=producer)
        thread.start()
        thread.join(timeout=0.05)
        assert thread.is_alive()  # blocked on the full queue
        assert queue.get() == "a"
        thread.join(timeout=2.0)
        assert admitted == [True]
        assert queue.get() == "b"

    def test_close_wakes_consumers_and_refuses_producers(self):
        queue = BoundedArrivalQueue(capacity=2)
        queue.put("a")
        queue.close()
        assert queue.get() == "a"  # drains the backlog
        assert queue.get() is None  # then reports closed
        with pytest.raises(QueueClosedError):
            queue.put("b")

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BoundedArrivalQueue(capacity=0)
        with pytest.raises(ValueError):
            BoundedArrivalQueue(capacity=1, policy="spill")

    def test_close_wakes_blocked_producer(self):
        queue = BoundedArrivalQueue(capacity=1, policy="block")
        queue.put("a")
        outcome = []

        def producer():
            try:
                queue.put("b")
            except QueueClosedError:
                outcome.append("closed")

        thread = threading.Thread(target=producer)
        thread.start()
        thread.join(timeout=0.05)
        assert thread.is_alive()  # parked on the full queue
        queue.close()
        thread.join(timeout=2.0)
        assert not thread.is_alive()
        assert outcome == ["closed"]

    def test_get_after_close_and_empty_returns_sentinel(self):
        queue = BoundedArrivalQueue(capacity=2)
        queue.close()
        assert queue.get() is None
        assert queue.get(timeout=0.01) is None  # stays closed, no raise

    def test_flush_discards_backlog_and_unblocks_join(self):
        queue = BoundedArrivalQueue(capacity=4)
        for item in "abc":
            queue.put(item)
        assert queue.flush() == 3
        assert queue.join(timeout=0.1)  # no outstanding work remains
        assert queue.accepted == 3  # admission history is preserved
        assert queue.shed == 0  # flush is not backpressure shedding

    def test_counters_monotone_under_concurrency(self):
        queue = BoundedArrivalQueue(capacity=8, policy="block")
        total = 200
        samples = []

        def producer():
            for i in range(total):
                queue.put(i)
            queue.close()

        def consumer():
            while True:
                item = queue.get(timeout=2.0)
                if item is None:
                    break
                samples.append((queue.accepted, queue.processed))
                queue.task_done()

        threads = [
            threading.Thread(target=producer),
            threading.Thread(target=consumer),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert not any(thread.is_alive() for thread in threads)
        assert queue.accepted == total
        assert queue.processed == total
        assert queue.shed == 0
        for (acc0, proc0), (acc1, proc1) in zip(samples, samples[1:]):
            assert acc1 >= acc0
            assert proc1 >= proc0
        for accepted, processed in samples:
            assert processed <= accepted


@pytest.fixture
def plan():
    return ShardPlan(BOUNDS, cols=2, rows=2)


@pytest.fixture
def campaigns():
    return [campaign(cx, cy, tid0=100 * i) for i, (cx, cy) in enumerate(CENTERS)]


class TestShardedDispatcher:
    def test_sessions_pin_and_ids_are_global(self, plan, campaigns):
        dispatcher = ShardedDispatcher(plan, executor="serial")
        ids = [dispatcher.submit_instance(c) for c in campaigns]
        assert ids == [f"session-{i}" for i in range(1, 5)]
        assert [dispatcher.shard_of(sid) for sid in ids] == [0, 1, 2, 3]
        with pytest.raises(DuplicateSessionError):
            dispatcher.submit_instance(campaigns[0], session_id=ids[0])
        with pytest.raises(UnknownSessionError):
            dispatcher.shard_of("nope")

    def test_explicit_shard_override_is_validated(self, plan, campaigns):
        dispatcher = ShardedDispatcher(plan, executor="serial")
        # A campaign in cell 0 cannot be pinned to cell 3 ...
        with pytest.raises(ShardAffinityError):
            dispatcher.submit_instance(campaigns[0], shard_id=3)
        # ... but the overflow shard accepts anything.
        sid = dispatcher.submit_instance(campaigns[0],
                                         shard_id=plan.overflow_shard)
        assert dispatcher.shard_of(sid) == plan.overflow_shard
        with pytest.raises(ValueError):
            dispatcher.submit_instance(campaigns[1], shard_id=99)

    def test_serial_feed_returns_deliveries(self, plan, campaigns):
        dispatcher = ShardedDispatcher(plan, executor="serial")
        ids = [dispatcher.submit_instance(c) for c in campaigns]
        cx, cy = CENTERS[0]
        deliveries = dispatcher.feed_worker(
            Worker(index=1, location=Point(cx, cy), accuracy=0.9, capacity=2)
        )
        assert set(deliveries) == {ids[0]}
        assert dispatcher.arrivals_offered == 1

    def test_worker_fans_out_to_overflow_when_populated(self, plan, campaigns):
        dispatcher = ShardedDispatcher(plan, executor="serial")
        geo_id = dispatcher.submit_instance(campaigns[0])
        overflow_id = dispatcher.submit_instance(
            campaign(*CENTERS[0], tid0=900), shard_id=plan.overflow_shard
        )
        cx, cy = CENTERS[0]
        deliveries = dispatcher.feed_worker(
            Worker(index=1, location=Point(cx, cy), accuracy=0.9, capacity=2)
        )
        assert set(deliveries) == {geo_id, overflow_id}
        # One offered arrival, two per-shard feeds.
        assert dispatcher.arrivals_offered == 1
        assert dispatcher.metrics.workers_fed == 2

    def test_mid_stream_tasks_must_stay_in_cell(self, plan, campaigns):
        dispatcher = ShardedDispatcher(plan, executor="serial")
        sid = dispatcher.submit_instance(campaigns[0])
        # Same-cell tasks are accepted ...
        dispatcher.submit_tasks(
            sid, [Task(task_id=990, location=Point(520.0, 500.0))]
        )
        # ... tasks reaching into another cell are refused, atomically.
        before = dispatcher.poll()[sid].snapshot.tasks_total
        with pytest.raises(ShardAffinityError):
            dispatcher.submit_tasks(
                sid, [Task(task_id=991, location=Point(1500.0, 500.0))]
            )
        assert dispatcher.poll()[sid].snapshot.tasks_total == before

    def test_overflow_sessions_accept_any_tasks(self, plan, campaigns):
        dispatcher = ShardedDispatcher(plan, executor="serial")
        sid = dispatcher.submit_instance(campaigns[0],
                                         shard_id=plan.overflow_shard)
        dispatcher.submit_tasks(
            sid, [Task(task_id=990, location=Point(1900.0, 1900.0))]
        )
        assert dispatcher.poll()[sid].snapshot.tasks_total == 4

    def test_autostart_false_defers_processing(self, plan, campaigns):
        dispatcher = ShardedDispatcher(
            plan, executor="serial", autostart=False, queue_capacity=64
        )
        ids = [dispatcher.submit_instance(c) for c in campaigns]
        stream = city_stream(40)
        for worker in stream:
            assert dispatcher.feed_worker(worker) is None
        assert dispatcher.metrics.workers_fed == 0  # nothing processed yet
        dispatcher.start()
        dispatcher.drain()
        assert dispatcher.metrics.workers_fed == len(stream)
        assert set(dispatcher.poll()) == set(ids)
        dispatcher.stop()

    def test_shed_accounting_with_drop_oldest(self, plan, campaigns):
        dispatcher = ShardedDispatcher(
            plan,
            executor="serial",
            autostart=False,
            queue_capacity=4,
            queue_policy="drop-oldest",
        )
        for c in campaigns:
            dispatcher.submit_instance(c)
        # All 12 arrivals target shard 0's queue (capacity 4) -> 8 evicted.
        cx, cy = CENTERS[0]
        for index in range(1, 13):
            dispatcher.feed_worker(
                Worker(index=index, location=Point(cx, cy),
                       accuracy=0.9, capacity=2)
            )
        assert dispatcher.shed_total == 8
        status = {s.shard_id: s for s in dispatcher.shard_status()}
        assert status[0].arrivals_shed == 8
        assert status[0].queue_depth == 4
        assert status[1].arrivals_shed == 0
        dispatcher.start()
        dispatcher.drain()
        assert dispatcher.metrics.workers_fed == 4
        dispatcher.stop()

    def test_shed_accounting_with_reject(self, plan, campaigns):
        dispatcher = ShardedDispatcher(
            plan,
            executor="serial",
            autostart=False,
            queue_capacity=4,
            queue_policy="reject",
        )
        dispatcher.submit_instance(campaigns[0])
        cx, cy = CENTERS[0]
        for index in range(1, 13):
            dispatcher.feed_worker(
                Worker(index=index, location=Point(cx, cy),
                       accuracy=0.9, capacity=2)
            )
        assert dispatcher.shed_total == 8
        # Rejected keeps the *oldest* arrivals, drop-oldest the newest.
        dispatcher.start()
        dispatcher.drain()
        assert dispatcher.poll()["session-1"].workers_routed == 4
        dispatcher.stop()

    def test_thread_executor_serves_and_stops(self, plan, campaigns):
        dispatcher = ShardedDispatcher(plan, executor="thread",
                                       queue_capacity=256)
        ids = [dispatcher.submit_instance(c) for c in campaigns]
        stream = city_stream(200)
        assert dispatcher.feed_stream(stream) == len(stream)
        assert dispatcher.drain(timeout=10.0)
        statuses = dispatcher.poll()
        assert all(statuses[sid].complete for sid in ids)
        dispatcher.stop()
        dispatcher.stop()  # idempotent
        with pytest.raises(RuntimeError):
            dispatcher.feed_worker(stream[0])
        results = dispatcher.close_all()
        assert set(results) == set(ids)

    def test_metrics_roll_up_across_shards(self, plan, campaigns):
        dispatcher = ShardedDispatcher(plan, executor="serial")
        for c in campaigns:
            dispatcher.submit_instance(c)
        stream = city_stream(80)
        dispatcher.feed_stream(stream)
        aggregate = dispatcher.metrics
        per_shard = [s.metrics for s in dispatcher.shard_status()]
        assert aggregate.workers_fed == sum(m.workers_fed for m in per_shard)
        assert aggregate.workers_fed == len(stream)  # overflow is empty
        assert aggregate.sessions_opened == len(campaigns)
        assert aggregate.assignments_made == sum(
            m.assignments_made for m in per_shard
        )
        dispatcher.stop()

    def test_expire_tasks_routes_to_the_right_shard(self, plan, campaigns):
        dispatcher = ShardedDispatcher(plan, executor="serial")
        ids = [dispatcher.submit_instance(c) for c in campaigns]
        expired = dispatcher.expire_tasks(ids[2], [200, 201, 202])
        assert expired == [200, 201, 202]
        snapshot = dispatcher.poll()[ids[2]].snapshot
        assert snapshot.tasks_abandoned == 3
        assert snapshot.complete
        assert dispatcher.metrics.tasks_expired == 3
        dispatcher.stop()

    def test_unknown_sessions_raise(self, plan):
        dispatcher = ShardedDispatcher(plan, executor="serial")
        with pytest.raises(UnknownSessionError):
            dispatcher.submit_tasks("ghost", [])
        with pytest.raises(UnknownSessionError):
            dispatcher.close("ghost")

    def test_invalid_executor(self, plan):
        with pytest.raises(ValueError):
            ShardedDispatcher(plan, executor="fork")
