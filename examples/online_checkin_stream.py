#!/usr/bin/env python
"""Online task completion over a Foursquare-like check-in stream.

Builds a scaled-down New-York-like check-in stream (Table V substitution),
then drives the online algorithms arrival by arrival through the
:class:`~repro.simulation.engine.OnlineSimulation` engine.  The per-arrival
event log is used to show how task completion progresses over the stream and
where the algorithms start to differ.

Run with::

    python examples/online_checkin_stream.py
"""

from __future__ import annotations

from repro import NEW_YORK, OnlineSimulation, generate_checkin_instance, get_solver


def progress_milestones(outcome, total_tasks: int) -> dict[int, int]:
    """Arrival index at which 25/50/75/100% of the tasks were complete."""
    milestones = {}
    completed = 0
    targets = {25: None, 50: None, 75: None, 100: None}
    for event in outcome.events:
        completed += len(event.newly_completed_tasks)
        percentage = 100 * completed / total_tasks
        for target in targets:
            if targets[target] is None and percentage >= target:
                targets[target] = event.worker_index
    return {target: index for target, index in targets.items() if index is not None}


def main() -> None:
    # 2% of the real New York cardinalities; the stream keeps the city's
    # skewed neighbourhood popularity and chronological arrival order.
    config = NEW_YORK.scaled(0.02)
    instance = generate_checkin_instance(config)
    print(f"Check-in stream: {instance.num_tasks} POI tasks, "
          f"{instance.num_workers} check-ins, epsilon = {instance.error_rate}\n")

    for name in ("LAF", "AAM", "Random"):
        solver = get_solver(name)
        outcome = OnlineSimulation(solver).run(instance)
        result = outcome.result
        milestones = progress_milestones(outcome, instance.num_tasks)
        print(f"{name:7s} latency = {result.max_latency:6d}   "
              f"arrivals used = {result.workers_used:5d} / {outcome.workers_arrived}")
        print(f"{'':7s} completion milestones (arrival index): "
              + ", ".join(f"{pct}% @ {index}" for pct, index in milestones.items()))
        skipped = outcome.workers_skipped
        print(f"{'':7s} arrivals that received no question: {skipped}\n")

    print("AAM finishes the tail of hard (worker-starved) neighbourhoods")
    print("earlier because it switches to Largest-Remaining-First once those")
    print("tasks become the bottleneck; the naive Random baseline keeps")
    print("wasting capacity on questions that are already answered.")


if __name__ == "__main__":
    main()
