"""Tests for journaled recovery (`repro.service.recovery`).

Covers the arrival journal's replay exactness, the recovery policy and
supervisor bookkeeping (restart budgets, backoff schedule), and the
sharded dispatcher's restart/quarantine paths end to end.
"""

import pytest

from repro.algorithms.registry import build_solver
from repro.core.instance import LTCInstance
from repro.core.task import Task
from repro.core.worker import Worker
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point
from repro.service import (
    ArrivalJournal,
    FaultPlan,
    FaultSpec,
    InjectedShardCrash,
    JournalReplayError,
    LTCDispatcher,
    RecoveryPolicy,
    ShardedDispatcher,
    ShardPlan,
    ShardSupervisor,
)

BOUNDS = BoundingBox(0.0, 0.0, 2000.0, 2000.0)

#: City centres aligned with the cells of a 2x2 plan over BOUNDS.
CENTERS = [(500.0, 500.0), (1500.0, 500.0), (500.0, 1500.0), (1500.0, 1500.0)]


def campaign(cx, cy, tid0=0, num_tasks=3, spread=5.0):
    tasks = [
        Task(task_id=tid0 + i, location=Point(cx + spread * i, cy))
        for i in range(num_tasks)
    ]
    workers = [Worker(index=1, location=Point(cx, cy), accuracy=0.9, capacity=2)]
    return LTCInstance(tasks=tasks, workers=workers, error_rate=0.2)


def city_worker(index, city=0):
    cx, cy = CENTERS[city]
    return Worker(index=index, location=Point(cx, cy), accuracy=0.9, capacity=2)


def crash_fault(shard_id, at_arrival):
    return FaultPlan(
        faults=(FaultSpec(kind="crash", shard_id=shard_id, at_arrival=at_arrival),)
    )


class TestArrivalJournal:
    def test_replay_rebuilds_identical_state(self):
        """Recording every op while applying it, then replaying, must give
        a dispatcher in byte-identical state — the journal invariant."""
        journal = ArrivalJournal()
        live = LTCDispatcher(keep_streams=True)

        instance_a = campaign(*CENTERS[0])
        instance_b = campaign(*CENTERS[0], tid0=50)
        live.submit_instance(instance_a, solver="AAM", session_id="a")
        journal.record_open("a", instance_a, "AAM")
        live.submit_instance(instance_b, solver="LAF", session_id="b")
        journal.record_open("b", instance_b, "LAF")
        for index in range(1, 8):
            worker = city_worker(index)
            journal.record_worker(worker)  # write-ahead order
            live.feed_worker(worker)
        extra = [Task(task_id=90, location=Point(CENTERS[0][0], CENTERS[0][1]))]
        live.submit_tasks("a", extra)
        journal.record_tasks("a", extra)
        expired = live.expire_tasks("b", [50])
        journal.record_expire("b", expired)
        for index in range(8, 12):
            worker = city_worker(index)
            journal.record_worker(worker)
            live.feed_worker(worker)

        rebuilt = LTCDispatcher(keep_streams=True)
        assert journal.replay(rebuilt) == 11
        assert journal.worker_count == 11
        assert len(journal) == 15  # 2 opens + 11 workers + tasks + expire
        assert rebuilt.session_ids == live.session_ids
        for sid in live.session_ids:
            assert rebuilt.routed_stream(sid) == live.routed_stream(sid)
        live_results = live.close_all()
        rebuilt_results = rebuilt.close_all()
        for sid, result in live_results.items():
            assert (
                result.arrangement.assignments
                == rebuilt_results[sid].arrangement.assignments
            )

    def test_replay_includes_closes(self):
        journal = ArrivalJournal()
        instance = campaign(*CENTERS[0])
        journal.record_open("a", instance, "AAM")
        journal.record_close("a")
        rebuilt = LTCDispatcher()
        journal.replay(rebuilt)
        assert rebuilt.session_ids == []
        assert rebuilt.metrics.sessions_closed == 1

    def test_unreplayable_open_raises(self):
        journal = ArrivalJournal()
        journal.record_open("a", campaign(*CENTERS[0]), None, replayable=False)
        with pytest.raises(JournalReplayError):
            journal.replay(LTCDispatcher())

    def test_tainted_journal_raises(self):
        journal = ArrivalJournal()
        assert journal.replayable
        journal.mark_unreplayable("adopted foreign sessions")
        assert not journal.replayable
        with pytest.raises(JournalReplayError):
            journal.replay(LTCDispatcher())


class TestRecoveryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RecoveryPolicy(on_shard_failure="reboot")
        with pytest.raises(ValueError):
            RecoveryPolicy(max_restarts=-1)
        with pytest.raises(ValueError):
            RecoveryPolicy(transient_retries=-1)
        with pytest.raises(ValueError):
            RecoveryPolicy(backoff_seconds=-0.1)
        with pytest.raises(ValueError):
            RecoveryPolicy(backoff_multiplier=0.5)

    def test_journaling_follows_policy(self):
        assert not RecoveryPolicy().journaling
        assert not RecoveryPolicy(on_shard_failure="fail-fast").journaling
        assert RecoveryPolicy(on_shard_failure="restart").journaling
        assert RecoveryPolicy(on_shard_failure="quarantine").journaling


class TestShardSupervisor:
    def test_restart_budget_then_fail(self):
        supervisor = ShardSupervisor(
            RecoveryPolicy(on_shard_failure="restart", max_restarts=2)
        )
        boom = RuntimeError("boom")
        assert supervisor.decide(0, boom) == "restart"
        assert supervisor.decide(0, boom) == "restart"
        assert supervisor.decide(0, boom) == "fail"
        assert supervisor.restarts(0) == 2
        # Budgets are per shard.
        assert supervisor.decide(1, boom) == "restart"
        assert supervisor.last_error(0) == repr(boom)
        assert supervisor.last_error(2) is None

    def test_policies_map_to_actions(self):
        boom = RuntimeError("boom")
        assert ShardSupervisor(RecoveryPolicy()).decide(0, boom) == "fail"
        assert (
            ShardSupervisor(
                RecoveryPolicy(on_shard_failure="quarantine")
            ).decide(0, boom)
            == "quarantine"
        )

    def test_backoff_schedule_with_injected_sleep(self):
        slept = []
        supervisor = ShardSupervisor(
            RecoveryPolicy(
                on_shard_failure="restart",
                max_restarts=3,
                backoff_seconds=0.5,
                backoff_multiplier=2.0,
            ),
            sleep=slept.append,
        )
        boom = RuntimeError("boom")
        for _ in range(3):
            supervisor.decide(0, boom)
            supervisor.backoff(0)
        assert slept == [0.5, 1.0, 2.0]

    def test_zero_backoff_never_sleeps(self):
        def forbidden(_):
            raise AssertionError("slept with backoff_seconds=0")

        supervisor = ShardSupervisor(
            RecoveryPolicy(on_shard_failure="restart"), sleep=forbidden
        )
        supervisor.decide(0, RuntimeError("boom"))
        assert supervisor.backoff(0) == 0.0


@pytest.fixture
def plan():
    return ShardPlan(BOUNDS, cols=2, rows=2)


def run_serial(plan, faults=None, policy=None, num_workers=40):
    dispatcher = ShardedDispatcher(
        plan,
        executor="serial",
        queue_capacity=256,
        keep_streams=True,
        recovery=policy,
        faults=faults,
    )
    ids = [
        dispatcher.submit_instance(campaign(cx, cy, tid0=100 * i))
        for i, (cx, cy) in enumerate(CENTERS)
    ]
    index = 0
    for _ in range(num_workers // 4):
        for city in range(4):
            index += 1
            dispatcher.feed_worker(city_worker(index, city=city))
    streams = {sid: dispatcher.routed_stream(sid) for sid in ids}
    results = dispatcher.close_all()
    dispatcher.stop()
    return ids, streams, results, dispatcher


class TestRestartRecovery:
    def test_restart_replays_to_identical_state(self, plan):
        base_ids, base_streams, base_results, _ = run_serial(plan)
        ids, streams, results, dispatcher = run_serial(
            plan,
            faults=crash_fault(shard_id=0, at_arrival=5),
            policy=RecoveryPolicy(on_shard_failure="restart"),
        )
        assert ids == base_ids
        for sid in ids:
            assert streams[sid] == base_streams[sid]
            assert (
                results[sid].arrangement.assignments
                == base_results[sid].arrangement.assignments
            )
        metrics = dispatcher.metrics
        assert metrics.restarts == 1
        # The journal held the 4 processed arrivals plus the in-flight
        # one (write-ahead), so exactly 5 were replayed.
        assert metrics.replayed_arrivals == 5
        events = dispatcher.recovery_events
        assert len(events) == 1
        assert events[0].shard_id == 0
        assert events[0].action == "restart"
        assert events[0].replayed_arrivals == 5
        assert "InjectedShardCrash" in events[0].error

    def test_mid_stream_ops_survive_restart(self, plan):
        """submit_tasks / expire_tasks before the crash are replayed too."""

        def drive(dispatcher):
            sid = dispatcher.submit_instance(campaign(*CENTERS[0], num_tasks=4))
            for index in range(1, 4):
                dispatcher.feed_worker(city_worker(index))
            dispatcher.submit_tasks(
                sid, [Task(task_id=70, location=Point(510.0, 500.0))]
            )
            expired = dispatcher.expire_tasks(sid, [3])
            for index in range(4, 10):
                dispatcher.feed_worker(city_worker(index))
            status = dispatcher.poll()[sid]
            result = dispatcher.close(sid)
            dispatcher.stop()
            return expired, status.snapshot, result

        def build(**kwargs):
            return ShardedDispatcher(
                plan, executor="serial", queue_capacity=256, **kwargs
            )

        base = drive(build())
        faulty = drive(
            build(
                faults=crash_fault(shard_id=0, at_arrival=6),
                recovery=RecoveryPolicy(on_shard_failure="restart"),
            )
        )
        assert faulty[0] == base[0]
        assert faulty[1] == base[1]
        assert (
            faulty[2].arrangement.assignments == base[2].arrangement.assignments
        )
        assert (
            faulty[2].arrangement.abandoned_tasks
            == base[2].arrangement.abandoned_tasks
        )

    def test_restart_budget_exhaustion_fails_fast(self, plan):
        faults = FaultPlan(faults=(
            FaultSpec(kind="crash", shard_id=0, at_arrival=2),
            FaultSpec(kind="crash", shard_id=0, at_arrival=3),
        ))
        dispatcher = ShardedDispatcher(
            plan,
            executor="serial",
            faults=faults,
            recovery=RecoveryPolicy(on_shard_failure="restart", max_restarts=1),
        )
        dispatcher.submit_instance(campaign(*CENTERS[0]))
        dispatcher.feed_worker(city_worker(1))
        dispatcher.feed_worker(city_worker(2))  # crash 1: restarted
        with pytest.raises(InjectedShardCrash):
            dispatcher.feed_worker(city_worker(3))  # crash 2: budget gone
        status = {s.shard_id: s for s in dispatcher.shard_status()}
        assert status[0].state == "failed"
        assert status[0].restarts == 1
        dispatcher.stop()

    def test_prebuilt_solver_blocks_replay(self, plan):
        """A session opened with a Solver *object* cannot be rebuilt from
        the journal; the restart degrades to fail-fast with a clear error."""
        dispatcher = ShardedDispatcher(
            plan,
            executor="serial",
            faults=crash_fault(shard_id=0, at_arrival=2),
            recovery=RecoveryPolicy(on_shard_failure="restart", max_restarts=1),
        )
        dispatcher.submit_instance(campaign(*CENTERS[0]), solver=build_solver("AAM"))
        dispatcher.feed_worker(city_worker(1))
        with pytest.raises(JournalReplayError):
            dispatcher.feed_worker(city_worker(2))
        assert {s.shard_id: s.state for s in dispatcher.shard_status()}[0] == "failed"
        dispatcher.stop()

    def test_thread_restart_is_transparent(self, plan):
        dispatcher = ShardedDispatcher(
            plan,
            executor="thread",
            queue_capacity=256,
            faults=crash_fault(shard_id=0, at_arrival=3),
            recovery=RecoveryPolicy(on_shard_failure="restart"),
        )
        sid = dispatcher.submit_instance(campaign(*CENTERS[0]))
        for index in range(1, 9):
            dispatcher.feed_worker(city_worker(index))
        assert dispatcher.drain(timeout=10.0)  # no error surfaces
        assert dispatcher.metrics.restarts == 1
        assert dispatcher.poll()[sid].workers_routed == 8
        dispatcher.stop()


class TestQuarantine:
    def test_sessions_migrate_to_overflow(self, plan):
        dispatcher = ShardedDispatcher(
            plan,
            executor="serial",
            queue_capacity=256,
            faults=crash_fault(shard_id=0, at_arrival=3),
            recovery=RecoveryPolicy(on_shard_failure="quarantine"),
        )
        sid = dispatcher.submit_instance(campaign(*CENTERS[0]))
        other = dispatcher.submit_instance(campaign(*CENTERS[1], tid0=200))
        for index in range(1, 3):
            dispatcher.feed_worker(city_worker(index))
        assert dispatcher.shard_of(sid) == 0
        dispatcher.feed_worker(city_worker(3))  # crash -> quarantine
        assert dispatcher.shard_of(sid) == plan.overflow_shard
        assert dispatcher.shard_of(other) == 1  # untouched
        status = {s.shard_id: s for s in dispatcher.shard_status()}
        assert status[0].state == "quarantined"
        assert status[0].session_ids == []  # the husk serves nothing
        assert sid in status[plan.overflow_shard].session_ids
        metrics = dispatcher.metrics
        assert metrics.quarantined_sessions == 1
        assert metrics.replayed_arrivals == 3
        # The migrated session keeps serving through the overflow shard.
        before = dispatcher.poll()[sid].workers_routed
        dispatcher.feed_worker(city_worker(4))
        assert dispatcher.poll()[sid].workers_routed == before + 1
        # The dead geo shard's copy of that arrival is discarded, counted.
        assert status[0].arrivals_discarded == 0  # snapshot from before
        assert dispatcher.discarded_total == 1
        # Control-plane ops follow the migration.
        dispatcher.submit_tasks(
            sid, [Task(task_id=95, location=Point(500.0, 500.0))]
        )
        results = dispatcher.close_all()
        assert set(results) == {sid, other}
        dispatcher.stop()

    def test_new_campaigns_for_a_quarantined_cell_go_to_overflow(self, plan):
        dispatcher = ShardedDispatcher(
            plan,
            executor="serial",
            faults=crash_fault(shard_id=0, at_arrival=1),
            recovery=RecoveryPolicy(on_shard_failure="quarantine"),
        )
        dispatcher.submit_instance(campaign(*CENTERS[0]))
        dispatcher.feed_worker(city_worker(1))  # quarantines shard 0
        late = dispatcher.submit_instance(campaign(*CENTERS[0], tid0=300))
        assert dispatcher.shard_of(late) == plan.overflow_shard
        with pytest.raises(RuntimeError):
            dispatcher.submit_instance(
                campaign(*CENTERS[0], tid0=400), shard_id=0
            )
        dispatcher.stop()

    def test_overflow_failure_cannot_quarantine(self, plan):
        """The overflow shard has nowhere to migrate to: it fails fast."""
        overflow = plan.overflow_shard
        dispatcher = ShardedDispatcher(
            plan,
            executor="serial",
            faults=crash_fault(shard_id=overflow, at_arrival=1),
            recovery=RecoveryPolicy(on_shard_failure="quarantine"),
        )
        dispatcher.submit_instance(
            campaign(*CENTERS[0], tid0=500), shard_id=overflow
        )
        with pytest.raises(InjectedShardCrash):
            dispatcher.feed_worker(city_worker(1))
        state = {s.shard_id: s.state for s in dispatcher.shard_status()}
        assert state[overflow] == "failed"
        dispatcher.stop()


class TestProcessRecovery:
    """The worker-process failure transport feeds the same bookkeeping.

    A dispatch failure inside a shard's worker process crosses the pipe
    as a pickled exception plus the worker-side traceback; the
    supervisor must then record exactly what the thread executor records
    for the identical fault, and the surfaced exception must carry the
    worker's traceback for operators.
    """

    def run_executor(self, plan, executor, faults, policy, num_workers=12):
        dispatcher = ShardedDispatcher(
            plan,
            executor=executor,
            queue_capacity=256,
            recovery=policy,
            faults=faults,
        )
        dispatcher.submit_instance(campaign(*CENTERS[0]))
        for index in range(1, num_workers + 1):
            dispatcher.feed_worker(city_worker(index))
        dispatcher.drain(timeout=30.0)
        return dispatcher

    def test_process_last_error_matches_thread_executor(self, plan):
        faults = crash_fault(shard_id=0, at_arrival=3)
        policy = RecoveryPolicy(on_shard_failure="restart")
        threaded = self.run_executor(plan, "thread", faults, policy)
        processed = self.run_executor(plan, "process", faults, policy)
        thread_status = {s.shard_id: s for s in threaded.shard_status()}
        process_status = {s.shard_id: s for s in processed.shard_status()}
        assert (
            process_status[0].last_error
            == thread_status[0].last_error
            == repr(InjectedShardCrash("injected crash: shard 0, arrival 3"))
        )
        assert process_status[0].restarts == thread_status[0].restarts == 1
        assert process_status[0].state == "live"
        assert processed.metrics.restarts == 1
        threaded.stop()
        processed.stop()

    def test_surfaced_error_carries_worker_traceback(self, plan):
        """Fail-fast: the pickled exception resurfaces with the worker's
        traceback attached, and the no-journal accounting settles."""
        dispatcher = ShardedDispatcher(
            plan,
            executor="process",
            queue_capacity=256,
            recovery=RecoveryPolicy(on_shard_failure="fail-fast"),
            faults=crash_fault(shard_id=0, at_arrival=2),
        )
        dispatcher.submit_instance(campaign(*CENTERS[0]))
        for index in range(1, 7):
            dispatcher.feed_worker(city_worker(index))
        with pytest.raises(InjectedShardCrash, match="arrival 2") as info:
            dispatcher.drain(timeout=30.0)
        tb = info.value.worker_traceback
        assert "InjectedShardCrash" in tb
        assert "_raise_fault" in tb  # genuinely the worker-side frames
        status = {s.shard_id: s for s in dispatcher.shard_status()}
        assert status[0].state == "failed"
        assert "InjectedShardCrash" in status[0].last_error
        dispatcher.stop()  # the parked error was consumed; stop is clean

    def test_escalated_transient_restarts_like_thread(self, plan):
        """A transient outliving its retry budget kills the worker; the
        restart replays and the schedule marches on, as in the thread
        executor."""
        faults = FaultPlan(faults=(
            FaultSpec(
                kind="transient", shard_id=0, at_arrival=2, failures=5
            ),
        ))
        policy = RecoveryPolicy(
            on_shard_failure="restart", transient_retries=1
        )
        threaded = self.run_executor(plan, "thread", faults, policy)
        processed = self.run_executor(plan, "process", faults, policy)
        thread_status = {s.shard_id: s for s in threaded.shard_status()}
        process_status = {s.shard_id: s for s in processed.shard_status()}
        assert (
            process_status[0].last_error == thread_status[0].last_error
        )
        assert "injected transient dispatch failure" in (
            process_status[0].last_error
        )
        assert process_status[0].restarts == thread_status[0].restarts
        assert process_status[0].state == "live"
        threaded.stop()
        processed.stop()
