"""Replayable multi-city worker streams for load-testing the dispatch layer.

The sharded dispatcher's scaling claims need traffic that looks like the
paper's setting at platform scale: many cities, each hosting several
campaigns, sharing one merged stream of checking-in workers whose rate
breathes (diurnal cycles) and spikes (bursts biased toward a hot city).
:func:`build_workload` produces exactly that from a single seed — the same
:class:`ReplayConfig` always yields the same campaigns and the same worker
sequence, so a run can be replayed bit-for-bit on any dispatcher
configuration and the results compared byte-for-byte.

Cities sit on a coarse grid with spacing far larger than a city's radius,
so each campaign's eligibility reach stays inside its city's neighbourhood
— the geometry that lets a :class:`~repro.service.sharding.ShardPlan` pin
campaigns to geo shards.  Workers check in near a city chosen per arrival
(uniformly, except during bursts), at a position uniform in the city disk
scaled slightly beyond the task extent so a realistic fraction of arrivals
is eligible for nothing.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

from repro.core.instance import LTCInstance
from repro.core.task import Task
from repro.core.worker import Worker
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point


@dataclass(frozen=True)
class BurstWindow:
    """A traffic spike: a stream fraction window, a hot city, a multiplier.

    During the window ``[start, end)`` (fractions of the whole stream) the
    arrival intensity is multiplied by ``intensity`` and the hot city's
    selection weight by ``city_bias`` — the flash-crowd shape that stresses
    one shard's queue while the others idle.
    """

    start: float
    end: float
    hot_city: int
    intensity: float = 3.0
    city_bias: float = 4.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.start < self.end <= 1.0:
            raise ValueError("burst window must satisfy 0 <= start < end <= 1")
        if self.intensity <= 0 or self.city_bias <= 0:
            raise ValueError("burst intensity and city bias must be positive")


@dataclass(frozen=True)
class ReplayConfig:
    """Everything that determines a replayable workload, seed included.

    Parameters
    ----------
    seed:
        Master seed; equal configs generate equal workloads.
    city_cols / city_rows / city_spacing / city_radius:
        Cities sit at the centres of a ``city_cols x city_rows`` grid of
        ``city_spacing``-sized cells; tasks land within ``city_radius`` of
        a city centre (keep ``city_radius + d_max`` well under half the
        spacing so campaigns pin to geo shards).
    campaigns_per_city / tasks_per_campaign:
        Campaign fan-out.  Task ids are globally unique across campaigns.
    num_workers:
        Length of the merged arrival stream.
    worker_spread:
        Worker check-ins are uniform within ``worker_spread x city_radius``
        of the chosen city's centre — values above 1 make some arrivals
        eligible for nothing (the unrouted fraction).
    diurnal_amplitude:
        Relative amplitude of the sinusoidal day cycle modulating arrival
        intensity (0 disables it); ``diurnal_cycles`` full cycles span the
        stream.
    bursts:
        Optional :class:`BurstWindow` spikes layered on the base intensity.
    error_rate / capacity / accuracy_range / d_max:
        Per-campaign LTC parameters and the worker accuracy distribution.
    """

    seed: int = 20180416
    city_cols: int = 2
    city_rows: int = 2
    city_spacing: float = 1000.0
    city_radius: float = 60.0
    campaigns_per_city: int = 2
    tasks_per_campaign: int = 8
    num_workers: int = 10_000
    worker_spread: float = 1.6
    diurnal_amplitude: float = 0.5
    diurnal_cycles: float = 2.0
    bursts: Tuple[BurstWindow, ...] = ()
    error_rate: float = 0.2
    capacity: int = 3
    accuracy_range: Tuple[float, float] = (0.72, 0.98)
    d_max: float = 30.0

    def __post_init__(self) -> None:
        if self.city_cols < 1 or self.city_rows < 1:
            raise ValueError("need at least a 1x1 city grid")
        if self.num_workers < 1:
            raise ValueError("need at least one worker arrival")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal amplitude must be in [0, 1)")
        for burst in self.bursts:
            if not 0 <= burst.hot_city < self.city_cols * self.city_rows:
                raise ValueError(
                    f"burst hot_city {burst.hot_city} out of range for "
                    f"{self.city_cols * self.city_rows} cities"
                )

    @property
    def num_cities(self) -> int:
        return self.city_cols * self.city_rows

    @property
    def bounds(self) -> BoundingBox:
        """The serving region: the full city grid."""
        return BoundingBox(
            0.0, 0.0,
            self.city_cols * self.city_spacing,
            self.city_rows * self.city_spacing,
        )

    def city_center(self, city: int) -> Point:
        """Centre of city ``city`` (row-major over the city grid)."""
        if not 0 <= city < self.num_cities:
            raise ValueError(f"city {city} out of range 0..{self.num_cities - 1}")
        col = city % self.city_cols
        row = city // self.city_cols
        return Point(
            (col + 0.5) * self.city_spacing,
            (row + 0.5) * self.city_spacing,
        )


@dataclass(frozen=True)
class ReplayWorkload:
    """A generated workload: campaigns plus a replayable worker stream.

    ``campaigns`` are ready to :meth:`submit_instance`;
    :meth:`worker_stream` regenerates the identical arrival sequence on
    every call (it re-derives its generator from the config seed), so the
    workload object can drive any number of dispatcher configurations
    bit-for-bit identically.
    """

    config: ReplayConfig
    campaigns: List[LTCInstance] = field(compare=False)
    #: ``campaign_city[i]`` is the city index campaign ``i`` belongs to.
    campaign_city: List[int] = field(compare=False)

    def worker_stream(self) -> Iterator[Worker]:
        """Yield the merged arrival stream (identical on every call)."""
        return _generate_workers(self.config)

    def workers(self) -> List[Worker]:
        """The full stream materialised (convenience for small workloads)."""
        return list(self.worker_stream())


def _point_in_disk(rng: random.Random, center: Point, radius: float) -> Point:
    """Uniform point in the disk around ``center`` (rejection-free)."""
    angle = rng.uniform(0.0, 2.0 * math.pi)
    distance = radius * math.sqrt(rng.random())
    return Point(
        center.x + distance * math.cos(angle),
        center.y + distance * math.sin(angle),
    )


def build_workload(config: ReplayConfig) -> ReplayWorkload:
    """Generate the campaigns of a :class:`ReplayConfig` (deterministic).

    Campaign instances get globally unique task ids (posting order) and a
    single placeholder worker at the city centre —
    :class:`~repro.core.instance.LTCInstance` requires at least one worker
    and takes the capacity ``K`` from the minimum worker capacity, but
    dispatch sessions are fed routed live traffic, never the instance's
    own worker list.
    """
    # String seeds hash deterministically in random.Random (sha512 path);
    # tuple seeds would fall back to randomized str hashing per process.
    rng = random.Random(f"{config.seed}-campaigns")
    campaigns: List[LTCInstance] = []
    campaign_city: List[int] = []
    next_task_id = 0
    for city in range(config.num_cities):
        center = config.city_center(city)
        for slot in range(config.campaigns_per_city):
            tasks = []
            for _ in range(config.tasks_per_campaign):
                tasks.append(
                    Task(
                        task_id=next_task_id,
                        location=_point_in_disk(rng, center, config.city_radius),
                        metadata={"city": city},
                    )
                )
                next_task_id += 1
            placeholder = Worker(
                index=1,
                location=center,
                accuracy=max(config.accuracy_range[0], 0.66),
                capacity=config.capacity,
            )
            campaigns.append(
                LTCInstance(
                    tasks=tasks,
                    workers=[placeholder],
                    error_rate=config.error_rate,
                    name=f"city{city}-campaign{slot}",
                )
            )
            campaign_city.append(city)
    return ReplayWorkload(
        config=config, campaigns=campaigns, campaign_city=campaign_city
    )


def _city_weights(config: ReplayConfig, fraction: float) -> List[float]:
    weights = [1.0] * config.num_cities
    for burst in config.bursts:
        if burst.start <= fraction < burst.end:
            weights[burst.hot_city] *= burst.city_bias
    return weights


def _intensity(config: ReplayConfig, fraction: float) -> float:
    intensity = 1.0 + config.diurnal_amplitude * math.sin(
        2.0 * math.pi * config.diurnal_cycles * fraction
    )
    for burst in config.bursts:
        if burst.start <= fraction < burst.end:
            intensity *= burst.intensity
    return max(intensity, 1e-6)


def _generate_workers(config: ReplayConfig) -> Iterator[Worker]:
    """The arrival process: inhomogeneous rate, burst-biased city choice.

    Arrival *timestamps* accumulate exponential gaps whose rate follows the
    diurnal/burst intensity (so ``arrival_time`` is a realistic clock);
    arrival *order* is the index stream ``1..num_workers`` the algorithms
    consume.  Everything derives from ``config.seed``, making the stream
    replayable.
    """
    rng = random.Random(f"{config.seed}-workers")
    low, high = config.accuracy_range
    spread = config.worker_spread * config.city_radius
    clock = 0.0
    for index in range(1, config.num_workers + 1):
        fraction = (index - 1) / config.num_workers
        intensity = _intensity(config, fraction)
        clock += rng.expovariate(intensity)
        weights = _city_weights(config, fraction)
        city = rng.choices(range(config.num_cities), weights=weights)[0]
        center = config.city_center(city)
        yield Worker(
            index=index,
            location=_point_in_disk(rng, center, spread),
            accuracy=rng.uniform(max(low, 0.66), high),
            capacity=config.capacity,
            arrival_time=clock,
            metadata={"city": city},
        )
