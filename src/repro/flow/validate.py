"""Independent validation of flows.

The solver in :mod:`repro.flow.sspa` maintains its own invariants, but tests
and debugging assertions want an *independent* check that a computed flow is
feasible: capacities respected, flow conserved at every node except the
source and sink, and the claimed flow value consistent with the source's net
outflow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List

from repro.flow.network import FlowNetwork

Node = Hashable


@dataclass(frozen=True, slots=True)
class FlowViolation:
    """A single violated flow constraint, for readable test failures."""

    kind: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind}: {self.detail}"


def validate_flow(
    network: FlowNetwork,
    source: Node,
    sink: Node,
    expected_value: int | None = None,
) -> List[FlowViolation]:
    """Return the list of constraint violations of the network's current flow.

    An empty list means the flow is feasible.  When ``expected_value`` is
    given, the source's net outflow must equal it.
    """
    violations: List[FlowViolation] = []
    net_by_node: dict[Node, int] = {node: 0 for node in network.nodes}

    for edge in network.forward_edges():
        if edge.flow < 0:
            violations.append(
                FlowViolation("negative-flow", f"{edge.tail}->{edge.head}: {edge.flow}")
            )
        if edge.flow > edge.capacity:
            violations.append(
                FlowViolation(
                    "capacity",
                    f"{edge.tail}->{edge.head}: flow {edge.flow} > capacity {edge.capacity}",
                )
            )
        net_by_node[edge.tail] += edge.flow
        net_by_node[edge.head] -= edge.flow

    for node, net in net_by_node.items():
        if node == source or node == sink:
            continue
        if net != 0:
            violations.append(
                FlowViolation("conservation", f"node {node!r} has net outflow {net}")
            )

    if net_by_node.get(source, 0) != -net_by_node.get(sink, 0):
        violations.append(
            FlowViolation(
                "source-sink-mismatch",
                f"source net {net_by_node.get(source, 0)} vs sink net "
                f"{net_by_node.get(sink, 0)}",
            )
        )

    if expected_value is not None and net_by_node.get(source, 0) != expected_value:
        violations.append(
            FlowViolation(
                "value",
                f"source routes {net_by_node.get(source, 0)} units, expected "
                f"{expected_value}",
            )
        )

    return violations
