"""Tests for the LAF online solver (Algorithm 2)."""

import pytest

from repro.algorithms.laf import LAFSolver
from repro.core.accuracy import TabularAccuracy
from repro.core.instance import LTCInstance
from repro.core.task import Task
from repro.core.worker import Worker
from repro.geo.point import Point


def tabular_instance(table, num_tasks, num_workers, capacity=2, error_rate=0.2):
    tasks = [Task(task_id=i, location=Point(i, 0)) for i in range(num_tasks)]
    workers = [
        Worker(index=i, location=Point(0, i), accuracy=0.9, capacity=capacity)
        for i in range(1, num_workers + 1)
    ]
    return LTCInstance(tasks=tasks, workers=workers, error_rate=error_rate,
                       accuracy_model=TabularAccuracy(table))


class TestLAFBehaviour:
    def test_picks_largest_acc_star_tasks_first(self):
        # Worker 1 is much better at tasks 0 and 2 than at task 1.
        table = {(1, 0): 0.95, (1, 1): 0.7, (1, 2): 0.9}
        instance = tabular_instance(table, num_tasks=3, num_workers=1, capacity=2)
        solver = LAFSolver()
        solver.start(instance)
        assignments = solver.observe(instance.worker(1))
        assert {a.task_id for a in assignments} == {0, 2}

    def test_skips_completed_tasks(self, tiny_instance):
        solver = LAFSolver()
        solver.start(tiny_instance)
        for worker in tiny_instance.workers:
            solver.observe(worker)
            if solver.is_complete():
                break
        completed_before = set(solver.arrangement.uncompleted_tasks())
        # After completion no further pushes should target completed tasks.
        assert solver.arrangement.is_complete()
        assert completed_before == set()

    def test_respects_capacity(self, small_synthetic_instance):
        result = LAFSolver().solve(small_synthetic_instance)
        loads = {}
        for assignment in result.arrangement:
            loads[assignment.worker_index] = loads.get(assignment.worker_index, 0) + 1
        capacity = small_synthetic_instance.capacity
        assert all(load <= capacity for load in loads.values())

    def test_solve_stops_at_completion(self, tiny_instance):
        result = LAFSolver().solve(tiny_instance)
        assert result.completed
        assert result.max_latency <= tiny_instance.num_workers
        assert result.workers_observed == result.max_latency

    def test_observe_before_start_raises(self, tiny_instance):
        solver = LAFSolver()
        with pytest.raises(RuntimeError):
            solver.observe(tiny_instance.worker(1))
        with pytest.raises(RuntimeError):
            _ = solver.arrangement

    def test_diagnostics_count_used_workers(self, tiny_instance):
        solver = LAFSolver()
        result = solver.solve(tiny_instance)
        assert result.extra["workers_with_assignments"] == float(result.workers_used)

    def test_restart_resets_state(self, tiny_instance):
        solver = LAFSolver()
        first = solver.solve(tiny_instance)
        second = solver.solve(tiny_instance)
        assert first.max_latency == second.max_latency
        assert len(second.arrangement) == len(first.arrangement)

    def test_online_constraint_never_uses_future_workers(self, tiny_instance):
        """Assignments for worker i are made knowing only workers 1..i."""
        solver = LAFSolver()
        solver.start(tiny_instance)
        seen_indices = []
        for worker in tiny_instance.workers:
            assignments = solver.observe(worker)
            seen_indices.append(worker.index)
            for assignment in assignments:
                assert assignment.worker_index == worker.index
                assert assignment.worker_index <= max(seen_indices)
            if solver.is_complete():
                break

    def test_spatial_and_scan_variants_agree(self, small_synthetic_instance):
        indexed = LAFSolver(use_spatial_index=True).solve(small_synthetic_instance)
        scanned = LAFSolver(use_spatial_index=False).solve(small_synthetic_instance)
        assert indexed.max_latency == scanned.max_latency
        assert indexed.num_assignments == scanned.num_assignments
