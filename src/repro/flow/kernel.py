"""Flat, integer-indexed min-cost-flow kernel.

This module is the hot core of the flow layer.  Instead of one ``Edge``
object per arc and dict-of-lists adjacency keyed by tuple labels, the graph
lives in an :class:`ArcArena`: parallel lists ``head`` / ``cost`` / ``cap`` /
``flow`` indexed by arc id, with the residual twin of arc ``a`` always at
``a ^ 1`` (forward arcs are even, residual arcs odd) and the tail stored
implicitly as ``head[a ^ 1]``.  Adjacency is materialised on demand in two
cached forms sharing the same stable arc-insertion order: a compact CSR
pair ``(ptr, arcs)`` for external array consumers, and packed per-node
``(arc, head, cost)`` rows (:meth:`ArcArena.packed_adjacency`) that the
solver's inner loops iterate.

:func:`solve_mcf` is the Successive Shortest Path Algorithm rewritten over
those arrays: Dijkstra with Johnson potentials per augmentation, potentials
kept warm across augmentations, and deterministic tie-breaking (heap ties
fall back to the node id; among equal-cost relaxations the first-inserted
arc wins), so no vanishing cost perturbations are needed for reproducible
results.  The augmentation loop itself is pluggable: it runs on a
:mod:`repro.flow.backends` backend — the tuned pure-Python reference loop
or the numpy-vectorized one — selected per call (``backend=``), per process
(the ``REPRO_FLOW_BACKEND`` environment variable) or automatically.  All
backends are bit-exact with one another, so the choice is purely about
speed.

Initial potentials come from either :func:`bellman_ford_potentials`
(general graphs, detects negative cycles) or — for the LTC reduction, whose
residual graph at zero flow is a 3-layer DAG ``source -> workers -> tasks ->
sink`` — :func:`dag_potentials`, a single O(E) relaxation pass over a
caller-supplied topological order.

The arena also supports the batch lifecycle of MCF-LTC: persistent structure
(task->sink arcs) is built once, a watermark is taken with
:meth:`ArcArena.watermark`, and each batch rolls back to it with
:meth:`ArcArena.truncate` before appending that batch's worker arcs —
no per-batch network rebuild.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple

from repro.flow.exceptions import InfeasibleFlowError, NegativeCycleError

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.flow.backends import BackendLike

_INF = math.inf


class ArcArena:
    """A flow graph as parallel arrays over integer node and arc ids.

    Nodes are dense integers ``0..num_nodes - 1`` allocated by
    :meth:`add_node`.  :meth:`add_arc` appends a forward arc (even id) and
    its residual twin (odd id, ``arc ^ 1``) in one call.  All numeric state
    lives in the four parallel lists; there are no per-arc objects.

    Invariants (maintained by every mutator and relied on by the solver
    backends):

    * the four lists always have equal length, and ``num_arcs`` is even —
      arcs exist only as forward/twin pairs;
    * ``head[a ^ 1]`` is the tail of ``a``; ``cost[a ^ 1] == -cost[a]``;
      ``flow[a ^ 1] == -flow[a]``; residual twins rest at ``cap == 0``;
    * ``0 <= flow[a] <= cap[a]`` on forward arcs whenever flow was pushed
      through :meth:`push` or :func:`solve_mcf`;
    * arc ids are assigned in insertion order and never reused, which is
      what makes the kernel's tie-breaking (and therefore MCF-LTC
      arrangements) deterministic.
    """

    __slots__ = ("head", "cost", "cap", "flow", "_num_nodes",
                 "_csr_ptr", "_csr_arcs", "_csr_valid", "_adj", "_adj_valid")

    def __init__(self, num_nodes: int = 0) -> None:
        if num_nodes < 0:
            raise ValueError("num_nodes must be non-negative")
        self._num_nodes = num_nodes
        #: Head node of each arc; the tail is ``head[arc ^ 1]``.
        self.head: List[int] = []
        #: Cost per unit of flow (residual twins carry the negated cost).
        self.cost: List[float] = []
        #: Capacity of each arc (0 for residual twins at rest).
        self.cap: List[int] = []
        #: Current flow; twins always hold the negated flow.
        self.flow: List[int] = []
        self._csr_ptr: List[int] = []
        self._csr_arcs: List[int] = []
        self._csr_valid = False
        self._adj: List[List[Tuple[int, int, float]]] = []
        self._adj_valid = False

    def _invalidate(self) -> None:
        self._csr_valid = False
        self._adj_valid = False

    # -------------------------------------------------------------- topology

    @property
    def num_nodes(self) -> int:
        """Number of allocated nodes."""
        return self._num_nodes

    @property
    def num_arcs(self) -> int:
        """Number of arcs including residual twins (always even)."""
        return len(self.head)

    def add_node(self) -> int:
        """Allocate a new node and return its id."""
        node = self._num_nodes
        self._num_nodes += 1
        self._invalidate()
        return node

    def add_nodes(self, count: int) -> int:
        """Allocate ``count`` nodes; returns the first id of the dense run."""
        if count < 0:
            raise ValueError("count must be non-negative")
        first = self._num_nodes
        self._num_nodes += count
        self._invalidate()
        return first

    def add_arc(self, tail: int, head: int, capacity: int, cost: float) -> int:
        """Append ``tail -> head`` plus its residual twin; returns the even id.

        Capacities must be non-negative integers; costs any finite float
        (the LTC reduction uses negative costs on worker->task arcs).
        """
        if not (0 <= tail < self._num_nodes and 0 <= head < self._num_nodes):
            raise ValueError("tail and head must be allocated node ids")
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        if int(capacity) != capacity:
            raise ValueError("capacity must be an integer")
        arc = len(self.head)
        cost = float(cost)
        self.head.append(head)
        self.cost.append(cost)
        self.cap.append(int(capacity))
        self.flow.append(0)
        self.head.append(tail)
        self.cost.append(-cost)
        self.cap.append(0)
        self.flow.append(0)
        self._invalidate()
        return arc

    def tail(self, arc: int) -> int:
        """Tail node of ``arc`` (the head of its twin)."""
        return self.head[arc ^ 1]

    def is_residual(self, arc: int) -> bool:
        """Whether ``arc`` is a residual twin (odd id)."""
        return bool(arc & 1)

    def forward_arcs(self) -> range:
        """Ids of all forward (even) arcs."""
        return range(0, len(self.head), 2)

    # ----------------------------------------------------------------- state

    def residual(self, arc: int) -> int:
        """Residual capacity of ``arc``."""
        return self.cap[arc] - self.flow[arc]

    def push(self, arc: int, amount: int) -> None:
        """Push ``amount`` units along ``arc`` (and pull them off its twin)."""
        if amount < 0:
            raise ValueError("flow amount must be non-negative")
        if amount > self.cap[arc] - self.flow[arc]:
            raise ValueError(
                f"cannot push {amount} units over residual capacity "
                f"{self.cap[arc] - self.flow[arc]}"
            )
        self.flow[arc] += amount
        self.flow[arc ^ 1] -= amount

    def set_capacity(self, arc: int, capacity: int) -> None:
        """Re-set the capacity of a forward arc (batch-reuse lifecycle)."""
        if arc & 1:
            raise ValueError("capacities are set on forward (even) arcs")
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        if int(capacity) != capacity:
            raise ValueError("capacity must be an integer")
        self.cap[arc] = int(capacity)

    def reset_flows(self) -> None:
        """Zero out the flow on every arc."""
        self.flow = [0] * len(self.flow)

    def total_cost(self) -> float:
        """Total cost of the current flow over forward arcs."""
        cost, flow = self.cost, self.flow
        return sum(cost[a] * flow[a] for a in range(0, len(flow), 2) if flow[a])

    # ---------------------------------------------------------- batch reuse

    def watermark(self) -> Tuple[int, int]:
        """The ``(num_nodes, num_arcs)`` snapshot :meth:`truncate` rolls back to."""
        return (self._num_nodes, len(self.head))

    def truncate(self, num_nodes: int, num_arcs: int) -> None:
        """Roll back to a watermark: drop newer nodes/arcs, zero all flows.

        This is how MCF-LTC reuses one arena across batches: the persistent
        prefix (source, sink, task nodes and task->sink arcs) survives —
        capacities intact, flows zeroed — while the previous batch's worker
        nodes and arcs are discarded in one cheap pass over the retained
        arcs, without rebuilding the graph.
        """
        if num_arcs % 2:
            raise ValueError("num_arcs must be even (arcs come in twin pairs)")
        if num_arcs > len(self.head) or num_nodes > self._num_nodes:
            raise ValueError("cannot truncate beyond the current size")
        for a in range(num_arcs):
            if self.head[a] >= num_nodes:
                raise ValueError(
                    f"arc {a} references node {self.head[a]} above the "
                    f"node watermark {num_nodes}"
                )
        del self.head[num_arcs:]
        del self.cost[num_arcs:]
        del self.cap[num_arcs:]
        self.flow = [0] * num_arcs
        self._num_nodes = num_nodes
        self._invalidate()

    # ------------------------------------------------------------- adjacency

    def csr(self) -> Tuple[List[int], List[int]]:
        """CSR adjacency ``(ptr, arcs)``, rebuilt lazily after mutations.

        The arcs leaving node ``v`` (forward and residual) are
        ``arcs[ptr[v]:ptr[v + 1]]`` in stable arc-insertion order, which is
        what makes tie-breaking in :func:`solve_mcf` deterministic.
        """
        if not self._csr_valid:
            n = self._num_nodes
            head = self.head
            m = len(head)
            ptr = [0] * (n + 1)
            for a in range(m):
                ptr[head[a ^ 1] + 1] += 1
            for v in range(n):
                ptr[v + 1] += ptr[v]
            arcs = [0] * m
            slot = ptr[:-1]
            for a in range(m):
                v = head[a ^ 1]
                arcs[slot[v]] = a
                slot[v] += 1
            self._csr_ptr = ptr
            self._csr_arcs = arcs
            self._csr_valid = True
        return self._csr_ptr, self._csr_arcs

    def packed_adjacency(self) -> List[List[Tuple[int, int, float]]]:
        """Per-node ``(arc, head, cost)`` triples, cached like the CSR.

        The solver's Dijkstra inner loop runs over these packed rows rather
        than the flat CSR, trading one tuple per arc for three fewer list
        indexings per relaxation — a large constant-factor win in CPython.
        Row order is the same stable arc-insertion order as :meth:`csr`;
        ``cap``/``flow`` are looked up live, so pushing flow does not
        invalidate the cache (structural mutations do).
        """
        if not self._adj_valid:
            adj: List[List[Tuple[int, int, float]]] = [
                [] for _ in range(self._num_nodes)
            ]
            head, cost = self.head, self.cost
            for a in range(len(head)):
                adj[head[a ^ 1]].append((a, head[a], cost[a]))
            self._adj = adj
            self._adj_valid = True
        return self._adj


@dataclass(slots=True)
class KernelFlowResult:
    """Outcome of a :func:`solve_mcf` run.

    ``flow_value`` counts only the units routed by this call (the arena may
    carry pre-existing flow); ``total_cost`` is the cost of the arena's
    entire current flow.  ``potentials`` are the final Johnson potentials,
    reusable to warm-start a follow-up solve on the same arena.
    """

    flow_value: int
    total_cost: float
    augmentations: int
    potentials: List[float] = field(default_factory=list, repr=False)


def bellman_ford_potentials(graph: ArcArena, source: int) -> List[float]:
    """Shortest-path distances from ``source`` usable as initial potentials.

    Relaxes residual-capacity arcs until a fixpoint (early exit) and raises
    :class:`NegativeCycleError` after ``num_nodes`` full sweeps without one.
    Unreachable nodes keep an infinite potential, which removes them from
    later Dijkstra passes.
    """
    n = graph.num_nodes
    dist = [_INF] * n
    dist[source] = 0.0
    head, cost, cap, flow = graph.head, graph.cost, graph.cap, graph.flow
    m = len(head)
    for _ in range(n):
        changed = False
        for a in range(m):
            if cap[a] - flow[a] <= 0:
                continue
            d_tail = dist[head[a ^ 1]]
            if d_tail == _INF:
                continue
            candidate = d_tail + cost[a]
            h = head[a]
            if candidate < dist[h] - 1e-12:
                dist[h] = candidate
                changed = True
        if not changed:
            break
    else:
        raise NegativeCycleError("negative-cost cycle reachable from the source")
    return dist


def dag_potentials(
    graph: ArcArena, source: int, topo_order: Iterable[int]
) -> List[float]:
    """Initial potentials for a DAG in one O(E) relaxation pass.

    ``topo_order`` must be a topological order of the residual graph
    (every residual-capacity arc goes from an earlier to a later node) and
    the arena must carry no flow yet; otherwise the returned potentials are
    not shortest distances and must not be fed to :func:`solve_mcf`.  The
    LTC reduction satisfies both by construction: at zero flow its arcs run
    strictly ``source -> workers -> tasks -> sink``.
    """
    pot = [_INF] * graph.num_nodes
    pot[source] = 0.0
    cap, flow = graph.cap, graph.flow
    adj = graph.packed_adjacency()
    for node in topo_order:
        d = pot[node]
        if d == _INF:
            continue
        for a, h, c in adj[node]:
            if cap[a] - flow[a] <= 0:
                continue
            candidate = d + c
            if candidate < pot[h]:
                pot[h] = candidate
    return pot


def solve_mcf(
    graph: ArcArena,
    source: int,
    sink: int,
    max_flow: Optional[int] = None,
    require_max_flow: bool = False,
    potentials: Optional[Sequence[float]] = None,
    backend: "BackendLike" = None,
) -> KernelFlowResult:
    """Min-cost flow from ``source`` to ``sink`` by successive shortest paths.

    Parameters
    ----------
    graph:
        The arc arena.  Flow already present is kept and extended; on
        return ``graph.flow`` holds the combined flow (twins in lockstep)
        and every other arena field is untouched.
    source, sink:
        Node ids (must differ).
    max_flow:
        Route at most this many units; ``None`` routes a min-cost max-flow.
    require_max_flow:
        With ``max_flow``, raise :class:`InfeasibleFlowError` when fewer
        units can be routed.
    potentials:
        Warm-start Johnson potentials, e.g. from :func:`dag_potentials` or
        a previous result's ``potentials``.  Must be exact shortest
        distances from ``source`` under the arena's *current* residual
        graph (one entry per node, infinite for unreachable nodes) — stale
        potentials silently break optimality.  ``None`` computes them with
        :func:`bellman_ford_potentials`.
    backend:
        Which :mod:`repro.flow.backends` implementation runs the
        augmentation loop: a backend instance, a registered name
        (``"python"``, ``"numpy"``), ``"auto"``, or ``None`` to consult the
        ``REPRO_FLOW_BACKEND`` environment variable and fall back to
        ``"auto"`` (numpy when available, else python).  Backends are
        bit-exact with one another, so this only affects speed.  Unknown
        names raise ``KeyError`` with a did-you-mean hint; explicitly
        naming an unavailable backend raises
        :class:`~repro.flow.exceptions.BackendUnavailableError`.

    Returns
    -------
    :class:`KernelFlowResult` — units routed by this call, the total cost
    of the arena's entire current flow, the augmentation count, and the
    final potentials (valid warm-start input for a follow-up solve on the
    same arena).

    Notes
    -----
    Each augmentation runs Dijkstra over reduced costs with early exit at
    the sink, then advances the potentials so reduced costs stay
    non-negative (the warm-start across augmentations).  Determinism: heap
    ties compare the node id and relaxations use strict ``<``, so among
    equal-reduced-cost alternatives the lowest node id / first-inserted arc
    wins — stable across runs and across backends with no cost
    perturbation.
    """
    from repro.flow.backends import resolve_backend

    n = graph.num_nodes
    if not (0 <= source < n and 0 <= sink < n):
        raise ValueError("source and sink must be nodes of the graph")
    if source == sink:
        raise ValueError("source and sink must differ")
    if max_flow is not None and max_flow < 0:
        raise ValueError("max_flow must be non-negative")
    impl = resolve_backend(backend)

    if potentials is None:
        pot = bellman_ford_potentials(graph, source)
    else:
        pot = list(potentials)
        if len(pot) != n:
            raise ValueError("potentials must cover every node")

    target = _INF if max_flow is None else max_flow
    routed, augmentations, pot = impl.run(graph, source, sink, target, pot)

    if require_max_flow and max_flow is not None and routed < max_flow:
        raise InfeasibleFlowError(
            f"only {routed} of the requested {max_flow} units could be routed"
        )

    return KernelFlowResult(
        flow_value=routed,
        total_cost=graph.total_cost(),
        augmentations=augmentations,
        potentials=pot,
    )
