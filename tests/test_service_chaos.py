"""Chaos differential suite: crash-recovery must preserve byte-identity.

The recovery layer's exactness claim extends PR 6's differential
argument: a shard journal records the shard's operations in the exact
FIFO order its dispatcher observed them, so replaying the journal into a
fresh dispatcher rebuilds byte-identical state — and therefore a lossless
sharded run with **seeded mid-stream shard crashes** under
``on_shard_failure="restart"`` must still produce per-session
arrangements identical, assignment by assignment, to a fault-free
single-process run.  This suite enforces exactly that, across AAM/LAF ×
serial/thread/process executors, under whichever candidate backend
``REPRO_CANDIDATES_BACKEND`` selects (the CI backend matrix runs both).

Faults are scheduled on per-shard arrival ordinals
(:meth:`~repro.service.FaultPlan.seeded`), so every run — any executor,
any machine — crashes at the same points in the stream.  Under the
``process`` executor a scheduled crash **kills the worker process**
(``os._exit``) mid-stream: recovery must then spawn a fresh process and
replay the journal down its pipe, including the arrivals that were in
the pipe when the worker died.
"""

import pytest

from repro.service import (
    FaultPlan,
    LTCDispatcher,
    RecoveryPolicy,
    ShardedDispatcher,
    ShardPlan,
)
from repro.service.loadgen import BurstWindow, ReplayConfig, build_workload

CONFIG = ReplayConfig(
    seed=77,
    city_cols=2,
    city_rows=2,
    city_spacing=1000.0,
    city_radius=50.0,
    campaigns_per_city=2,
    tasks_per_campaign=6,
    num_workers=2500,
    worker_spread=1.4,
    diurnal_amplitude=0.5,
    bursts=(BurstWindow(0.4, 0.5, hot_city=3, intensity=2.5, city_bias=3.0),),
    error_rate=0.15,
    capacity=2,
)

GEO_SHARDS = [0, 1, 2, 3]

#: Three crashes scattered over the geo shards, all early enough that
#: every one fires (each shard sees well over 250 arrivals).
CRASH_PLAN = FaultPlan.seeded(
    seed=1234, shard_ids=GEO_SHARDS, max_arrival=250, crashes=3
)


@pytest.fixture(scope="module")
def workload():
    return build_workload(CONFIG)


def run_single_process(workload, solver):
    dispatcher = LTCDispatcher(default_solver=solver, keep_streams=True)
    ids = [dispatcher.submit_instance(c) for c in workload.campaigns]
    for worker in workload.worker_stream():
        dispatcher.feed_worker(worker)
    streams = {sid: dispatcher.routed_stream(sid) for sid in ids}
    return ids, streams, dispatcher.close_all()


def run_chaotic(workload, solver, executor, faults, policy):
    plan = ShardPlan.for_region(CONFIG.bounds, cols=2, rows=2)
    dispatcher = ShardedDispatcher(
        plan,
        default_solver=solver,
        executor=executor,
        queue_capacity=8192,
        keep_streams=True,
        recovery=policy,
        faults=faults,
    )
    ids = [dispatcher.submit_instance(c) for c in workload.campaigns]
    dispatcher.feed_stream(workload.worker_stream())
    dispatcher.drain()
    streams = {sid: dispatcher.routed_stream(sid) for sid in ids}
    results = dispatcher.close_all()
    dispatcher.stop()
    return ids, streams, results, dispatcher


def assert_identical(base, candidate):
    base_ids, base_streams, base_results = base
    cand_ids, cand_streams, cand_results = candidate
    assert len(base_ids) == len(cand_ids)
    for base_id, cand_id in zip(base_ids, cand_ids):
        assert base_streams[base_id] == cand_streams[cand_id]
        base_result = base_results[base_id]
        cand_result = cand_results[cand_id]
        assert (
            base_result.arrangement.assignments
            == cand_result.arrangement.assignments
        )
        assert base_result.max_latency == cand_result.max_latency
        assert base_result.completed == cand_result.completed


@pytest.mark.parametrize("solver", ["AAM", "LAF"])
@pytest.mark.parametrize("executor", ["serial", "thread", "process"])
def test_restart_recovery_matches_fault_free_single_process(
    workload, solver, executor
):
    base = run_single_process(workload, solver)
    ids, streams, results, dispatcher = run_chaotic(
        workload,
        solver,
        executor,
        faults=CRASH_PLAN,
        policy=RecoveryPolicy(on_shard_failure="restart"),
    )
    assert_identical(base, (ids, streams, results))
    # Every scheduled crash fired and was recovered; nothing was lost.
    metrics = dispatcher.metrics
    assert metrics.restarts == 3
    assert metrics.replayed_arrivals > 0
    assert dispatcher.shed_total == 0
    assert dispatcher.discarded_total == 0


@pytest.mark.parametrize("executor", ["serial", "thread", "process"])
def test_transient_faults_retry_in_place_exactly(workload, executor):
    """Bounded retry absorbs transients without touching the arrangements."""
    faults = FaultPlan.seeded(
        seed=55,
        shard_ids=GEO_SHARDS,
        max_arrival=250,
        crashes=0,
        transients=4,
        transient_failures=2,
    )
    base = run_single_process(workload, "AAM")
    ids, streams, results, dispatcher = run_chaotic(
        workload,
        "AAM",
        executor,
        faults=faults,
        policy=RecoveryPolicy(on_shard_failure="restart", transient_retries=2),
    )
    assert_identical(base, (ids, streams, results))
    assert dispatcher.metrics.restarts == 0


def test_mixed_faults_still_match(workload):
    """Crashes and transients together, serial executor."""
    faults = FaultPlan.seeded(
        seed=99,
        shard_ids=GEO_SHARDS,
        max_arrival=250,
        crashes=2,
        transients=3,
        transient_failures=1,
    )
    base = run_single_process(workload, "AAM")
    ids, streams, results, dispatcher = run_chaotic(
        workload,
        "AAM",
        "serial",
        faults=faults,
        policy=RecoveryPolicy(on_shard_failure="restart", transient_retries=1),
    )
    assert_identical(base, (ids, streams, results))
    assert dispatcher.metrics.restarts == 2


def test_serial_quarantine_matches_fault_free_single_process(workload):
    """Under the serial executor quarantine is exact too.

    The crashed shard's sessions are rebuilt from the journal and migrate
    to the overflow shard; from then on every arrival fans out to
    overflow (it is populated), so the migrated sessions keep receiving
    exactly their eligible sub-streams.  Serially there is never a
    backlog in the dead shard's queue, so nothing is discarded that a
    session would have received.
    """
    faults = FaultPlan.seeded(
        seed=7, shard_ids=GEO_SHARDS, max_arrival=250, crashes=1
    )
    base = run_single_process(workload, "AAM")
    ids, streams, results, dispatcher = run_chaotic(
        workload,
        "AAM",
        "serial",
        faults=faults,
        policy=RecoveryPolicy(on_shard_failure="quarantine"),
    )
    assert_identical(base, (ids, streams, results))
    assert dispatcher.metrics.quarantined_sessions == CONFIG.campaigns_per_city
    assert dispatcher.metrics.restarts == 0
    # The dead geo shard's subsequent traffic is discarded (and counted):
    # the overflow shard serves the migrated sessions instead.
    assert dispatcher.discarded_total > 0
    events = dispatcher.recovery_events
    assert [event.action for event in events] == ["quarantine"]


def test_process_crash_kills_the_worker_and_accounting_matches_thread(workload):
    """A process-executor crash is a real process death, same books.

    The injected crash fires inside the worker process and hard-exits it;
    the supervisor must record the same ``last_error`` repr and restart
    counts as the thread executor resolving the identical fault plan, and
    every recovery event must be a restart of a crashed geo shard.
    """
    policy = RecoveryPolicy(on_shard_failure="restart")
    *_, threaded = run_chaotic(workload, "AAM", "thread", CRASH_PLAN, policy)
    *_, processed = run_chaotic(workload, "AAM", "process", CRASH_PLAN, policy)
    thread_status = {s.shard_id: s for s in threaded.shard_status()}
    process_status = {s.shard_id: s for s in processed.shard_status()}
    crashed = {spec.shard_id for spec in CRASH_PLAN.faults}
    for shard_id in crashed:
        assert (
            process_status[shard_id].last_error
            == thread_status[shard_id].last_error
        )
        assert "InjectedShardCrash" in process_status[shard_id].last_error
        assert (
            process_status[shard_id].restarts
            == thread_status[shard_id].restarts
        )
        assert process_status[shard_id].state == "live"
    assert {e.shard_id for e in processed.recovery_events} == crashed
    assert all(e.action == "restart" for e in processed.recovery_events)
    # The replay prefix is cut at the ordinal the worker died on, so the
    # replayed-arrival count matches the thread executor exactly (whose
    # journal holds precisely what its dispatcher consumed).
    assert (
        processed.metrics.replayed_arrivals
        == threaded.metrics.replayed_arrivals
    )
    assert processed.metrics.restarts == threaded.metrics.restarts == 3
