"""A bounded heap that keeps the K largest-scored items.

This mirrors the heap ``Q`` in the paper's Algorithms 1-3: candidate tasks
are pushed with a score (``Acc*`` for LAF, the gain for LGF, the remaining
need for LRF) and the heap retains only the best ``capacity`` of them.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Generic, Iterator, List, Tuple, TypeVar

Item = TypeVar("Item")


class TopKHeap(Generic[Item]):
    """Keeps the ``capacity`` items with the largest scores.

    Internally a min-heap of size at most ``capacity``: pushing a new item
    evicts the currently smallest-scored item when the heap is full and the
    new score is larger.  Ties are broken in favour of the item pushed first
    (earlier items are *not* evicted by equal scores), which matches the
    deterministic behaviour assumed by the paper's worked examples.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        # Entries are (score, -sequence, item): among equal scores the most
        # recently pushed entry is the smallest and therefore evicted first.
        self._heap: List[Tuple[float, int, Item]] = []
        self._counter = itertools.count()

    @property
    def capacity(self) -> int:
        """Maximum number of retained items."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, score: float, item: Item) -> bool:
        """Offer ``item`` with ``score``; return True if it was retained."""
        entry = (float(score), -next(self._counter), item)
        if len(self._heap) < self._capacity:
            heapq.heappush(self._heap, entry)
            return True
        if entry > self._heap[0]:
            heapq.heapreplace(self._heap, entry)
            return True
        return False

    def pop_smallest(self) -> Tuple[float, Item]:
        """Remove and return the retained item with the smallest score."""
        if not self._heap:
            raise IndexError("pop from an empty TopKHeap")
        score, _, item = heapq.heappop(self._heap)
        return score, item

    def pop_all(self) -> List[Tuple[float, Item]]:
        """Remove and return all retained items, largest score first."""
        drained: List[Tuple[float, Item]] = []
        while self._heap:
            drained.append(self.pop_smallest())
        drained.reverse()
        return drained

    def peek_items(self) -> List[Item]:
        """The retained items in arbitrary order (heap unchanged)."""
        return [item for _, _, item in self._heap]

    def __iter__(self) -> Iterator[Tuple[float, Item]]:
        """Iterate over ``(score, item)`` pairs in arbitrary order."""
        for score, _, item in self._heap:
            yield score, item

    def clear(self) -> None:
        """Drop every retained item."""
        self._heap.clear()
