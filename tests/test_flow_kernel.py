"""Tests for the array-based min-cost-flow kernel (repro.flow.kernel)."""

import math

import pytest

from repro.flow.exceptions import InfeasibleFlowError, NegativeCycleError
from repro.flow.kernel import (
    ArcArena,
    bellman_ford_potentials,
    dag_potentials,
    solve_mcf,
)
from repro.flow.validate import validate_arena_flow


def diamond():
    """s -> {a, b} -> t with different costs; returns (arena, s, a, b, t)."""
    arena = ArcArena(4)
    s, a, b, t = 0, 1, 2, 3
    arena.add_arc(s, a, 2, 1.0)
    arena.add_arc(s, b, 2, 2.0)
    arena.add_arc(a, t, 2, 1.0)
    arena.add_arc(b, t, 2, 1.0)
    return arena, s, a, b, t


class TestArena:
    def test_twin_pairing_via_xor(self):
        arena = ArcArena(2)
        arc = arena.add_arc(0, 1, 3, 2.5)
        assert arc == 0
        twin = arc ^ 1
        assert arena.head[arc] == 1 and arena.head[twin] == 0
        assert arena.tail(arc) == 0 and arena.tail(twin) == 1
        assert arena.cap[twin] == 0
        assert arena.cost[twin] == -2.5
        assert not arena.is_residual(arc) and arena.is_residual(twin)

    def test_add_arc_validates(self):
        arena = ArcArena(2)
        with pytest.raises(ValueError):
            arena.add_arc(0, 1, -1, 0.0)
        with pytest.raises(ValueError):
            arena.add_arc(0, 1, 1.5, 0.0)
        with pytest.raises(ValueError):
            arena.add_arc(0, 5, 1, 0.0)

    def test_push_and_residuals(self):
        arena = ArcArena(2)
        arc = arena.add_arc(0, 1, 5, 1.0)
        arena.push(arc, 3)
        assert arena.flow[arc] == 3
        assert arena.residual(arc) == 2
        assert arena.residual(arc ^ 1) == 3
        arena.push(arc ^ 1, 1)  # cancel one unit over the residual twin
        assert arena.flow[arc] == 2
        with pytest.raises(ValueError):
            arena.push(arc, 10)
        with pytest.raises(ValueError):
            arena.push(arc, -1)

    def test_reset_and_total_cost(self):
        arena = ArcArena(3)
        a0 = arena.add_arc(0, 1, 2, 3.0)
        a1 = arena.add_arc(1, 2, 2, -1.0)
        arena.push(a0, 2)
        arena.push(a1, 1)
        assert arena.total_cost() == pytest.approx(2 * 3.0 + 1 * -1.0)
        arena.reset_flows()
        assert arena.total_cost() == 0.0
        assert all(f == 0 for f in arena.flow)

    def test_csr_is_stable_insertion_order(self):
        arena = ArcArena(3)
        first = arena.add_arc(0, 1, 1, 0.0)
        second = arena.add_arc(0, 2, 1, 0.0)
        third = arena.add_arc(0, 1, 1, 5.0)  # parallel arc
        ptr, arcs = arena.csr()
        assert arcs[ptr[0]:ptr[1]] == [first, second, third]
        # Residual twins hang off their own tail nodes.
        assert arcs[ptr[1]:ptr[2]] == [first ^ 1, third ^ 1]
        assert arcs[ptr[2]:ptr[3]] == [second ^ 1]

    def test_csr_invalidated_by_mutation(self):
        arena = ArcArena(2)
        arena.add_arc(0, 1, 1, 0.0)
        ptr, arcs = arena.csr()
        node = arena.add_node()
        arena.add_arc(1, node, 1, 0.0)
        ptr2, arcs2 = arena.csr()
        assert len(ptr2) == 4 and len(arcs2) == 4

    def test_set_capacity(self):
        arena = ArcArena(2)
        arc = arena.add_arc(0, 1, 1, 0.0)
        arena.set_capacity(arc, 7)
        assert arena.cap[arc] == 7
        with pytest.raises(ValueError):
            arena.set_capacity(arc ^ 1, 3)
        with pytest.raises(ValueError):
            arena.set_capacity(arc, -1)

    def test_truncate_rolls_back_to_watermark(self):
        arena = ArcArena(2)
        base_arc = arena.add_arc(0, 1, 4, 1.0)
        mark = arena.watermark()
        extra = arena.add_node()
        arena.add_arc(0, extra, 1, 0.0)
        arena.push(base_arc, 2)
        arena.truncate(*mark)
        assert arena.num_nodes == 2
        assert arena.num_arcs == 2
        assert arena.flow[base_arc] == 0  # flows zeroed on surviving arcs
        assert arena.cap[base_arc] == 4  # capacities survive
        # The adjacency no longer mentions the dropped arc.
        ptr, arcs = arena.csr()
        assert len(arcs) == 2

    def test_truncate_validates(self):
        arena = ArcArena(1)
        node = arena.add_node()
        arena.add_arc(0, node, 1, 0.0)
        with pytest.raises(ValueError):
            arena.truncate(2, 1)  # odd arc count
        with pytest.raises(ValueError):
            arena.truncate(2, 8)  # beyond current size
        with pytest.raises(ValueError):
            arena.truncate(1, 2)  # surviving arc references dropped node


class TestPotentials:
    def test_bellman_ford_matches_dag_pass_on_ltc_shape(self):
        arena = ArcArena(0)
        s = arena.add_node()
        t = arena.add_node()
        w = [arena.add_node() for _ in range(3)]
        tk = [arena.add_node() for _ in range(2)]
        for node in w:
            arena.add_arc(s, node, 2, 0.0)
        costs = [[-0.9, -0.2], [-0.85, -0.8], [-0.3, -0.75]]
        for i, node in enumerate(w):
            for j, task in enumerate(tk):
                arena.add_arc(node, task, 1, costs[i][j])
        for task in tk:
            arena.add_arc(task, t, 2, 0.0)
        bf = bellman_ford_potentials(arena, s)
        dag = dag_potentials(arena, s, [s] + w + tk + [t])
        assert dag == pytest.approx(bf)

    def test_dag_potentials_skips_saturated_arcs(self):
        arena = ArcArena(2)
        arena.add_arc(0, 1, 0, -5.0)  # zero capacity: never usable
        pot = dag_potentials(arena, 0, [0, 1])
        assert pot[0] == 0.0
        assert pot[1] == math.inf

    def test_bellman_ford_detects_negative_cycle(self):
        arena = ArcArena(3)
        arena.add_arc(0, 1, 1, -1.0)
        arena.add_arc(1, 2, 1, -1.0)
        arena.add_arc(2, 0, 1, -1.0)
        with pytest.raises(NegativeCycleError):
            bellman_ford_potentials(arena, 0)


class TestSolveMcf:
    def test_routes_max_flow_on_diamond(self):
        arena, s, a, b, t = diamond()
        result = solve_mcf(arena, s, t)
        assert result.flow_value == 4
        assert result.total_cost == pytest.approx(2 * 2.0 + 2 * 3.0)
        assert validate_arena_flow(arena, s, t, expected_value=4) == []

    def test_respects_max_flow_and_prefers_cheap_path(self):
        arena, s, a, b, t = diamond()
        result = solve_mcf(arena, s, t, max_flow=2)
        assert result.flow_value == 2
        assert result.total_cost == pytest.approx(4.0)
        assert arena.flow[0] == 2  # s->a carries both units
        assert arena.flow[2] == 0  # s->b unused

    def test_negative_costs(self):
        arena = ArcArena(4)
        s, a, b, t = 0, 1, 2, 3
        arena.add_arc(s, a, 1, 0.0)
        arena.add_arc(s, b, 1, 0.0)
        best = arena.add_arc(a, t, 1, -5.0)
        arena.add_arc(b, t, 1, -1.0)
        result = solve_mcf(arena, s, t, max_flow=1)
        assert arena.flow[best] == 1
        assert result.total_cost == pytest.approx(-5.0)

    def test_disconnected_sink(self):
        arena = ArcArena(3)
        arena.add_arc(0, 1, 1, 1.0)
        result = solve_mcf(arena, 0, 2)
        assert result.flow_value == 0
        assert result.augmentations == 0

    def test_require_max_flow_raises_when_infeasible(self):
        arena = ArcArena(3)
        arena.add_arc(0, 1, 1, 1.0)
        arena.add_arc(1, 2, 1, 1.0)
        with pytest.raises(InfeasibleFlowError):
            solve_mcf(arena, 0, 2, max_flow=2, require_max_flow=True)

    def test_invalid_arguments(self):
        arena, s, a, b, t = diamond()
        with pytest.raises(ValueError):
            solve_mcf(arena, s, 99)
        with pytest.raises(ValueError):
            solve_mcf(arena, s, t, max_flow=-1)
        with pytest.raises(ValueError):
            solve_mcf(arena, s, s)
        with pytest.raises(ValueError):
            solve_mcf(arena, s, t, potentials=[0.0])  # wrong length

    def test_continues_from_existing_flow(self):
        arena, s, a, b, t = diamond()
        solve_mcf(arena, s, t, max_flow=2)
        result = solve_mcf(arena, s, t, max_flow=2)
        assert result.flow_value == 2
        assert validate_arena_flow(arena, s, t, expected_value=4) == []

    def test_warm_started_potentials_give_same_answer(self):
        arena, s, a, b, t = diamond()
        pot = dag_potentials(arena, s, [s, a, b, t])
        warm = solve_mcf(arena, s, t, potentials=pot)
        arena2, s2, a2, b2, t2 = diamond()
        cold = solve_mcf(arena2, s2, t2)
        assert warm.flow_value == cold.flow_value
        assert warm.total_cost == pytest.approx(cold.total_cost)
        assert arena.flow == arena2.flow

    def test_final_potentials_can_warm_start_a_resolve(self):
        arena, s, a, b, t = diamond()
        first = solve_mcf(arena, s, t, max_flow=2)
        second = solve_mcf(arena, s, t, potentials=first.potentials)
        assert first.flow_value + second.flow_value == 4
        assert validate_arena_flow(arena, s, t, expected_value=4) == []

    def test_deterministic_across_runs(self):
        runs = []
        for _ in range(3):
            arena, s, a, b, t = diamond()
            solve_mcf(arena, s, t)
            runs.append(list(arena.flow))
        assert runs[0] == runs[1] == runs[2]

    def test_batch_reuse_lifecycle(self):
        """The MCF-LTC pattern: persistent sink arcs, per-batch worker arcs."""
        arena = ArcArena(2)  # 0 = source, 1 = sink
        task = arena.add_node()
        sink_arc = arena.add_arc(task, 1, 2, 0.0)
        mark = arena.watermark()

        # Batch 1: one worker, routes one unit.
        w1 = arena.add_node()
        arena.add_arc(0, w1, 1, 0.0)
        arena.add_arc(w1, task, 1, -0.9)
        r1 = solve_mcf(arena, 0, 1, potentials=dag_potentials(arena, 0, [0, w1, task, 1]))
        assert r1.flow_value == 1

        # Batch 2: roll back, task only needs one more unit now.
        arena.truncate(*mark)
        arena.set_capacity(sink_arc, 1)
        w2 = arena.add_node()
        arena.add_arc(0, w2, 3, 0.0)
        arena.add_arc(w2, task, 1, -0.8)
        r2 = solve_mcf(arena, 0, 1, potentials=dag_potentials(arena, 0, [0, w2, task, 1]))
        assert r2.flow_value == 1
        assert r2.total_cost == pytest.approx(-0.8)
        assert validate_arena_flow(arena, 0, 1, expected_value=1) == []
