"""Tests for repro.flow.network."""

import pytest

from repro.flow.network import FlowNetwork


class TestEdgeCreation:
    def test_add_edge_creates_residual_twin(self):
        network = FlowNetwork()
        edge = network.add_edge("a", "b", capacity=3, cost=2.5)
        twin = edge.twin
        assert twin.tail == "b" and twin.head == "a"
        assert twin.capacity == 0
        assert twin.cost == -2.5
        assert twin.is_residual
        assert twin.twin is edge

    def test_rejects_negative_or_fractional_capacity(self):
        network = FlowNetwork()
        with pytest.raises(ValueError):
            network.add_edge("a", "b", capacity=-1, cost=0.0)
        with pytest.raises(ValueError):
            network.add_edge("a", "b", capacity=1.5, cost=0.0)

    def test_nodes_registered_automatically(self):
        network = FlowNetwork()
        network.add_edge("a", "b", 1, 0.0)
        assert "a" in network and "b" in network
        assert len(network) == 2

    def test_add_node_is_idempotent(self):
        network = FlowNetwork()
        network.add_node("x")
        network.add_node("x")
        assert network.nodes == ["x"]


class TestFlowManipulation:
    def test_push_updates_residual_capacities(self):
        network = FlowNetwork()
        edge = network.add_edge("a", "b", 5, 1.0)
        edge.push(3)
        assert edge.flow == 3
        assert edge.residual_capacity == 2
        assert edge.twin.residual_capacity == 3

    def test_push_beyond_capacity_rejected(self):
        network = FlowNetwork()
        edge = network.add_edge("a", "b", 2, 1.0)
        with pytest.raises(ValueError):
            edge.push(3)
        with pytest.raises(ValueError):
            edge.push(-1)

    def test_push_on_residual_edge_cancels_flow(self):
        network = FlowNetwork()
        edge = network.add_edge("a", "b", 2, 1.0)
        edge.push(2)
        edge.twin.push(1)
        assert edge.flow == 1

    def test_total_cost_counts_forward_edges_only(self):
        network = FlowNetwork()
        e1 = network.add_edge("s", "a", 2, 3.0)
        e2 = network.add_edge("a", "t", 2, -1.0)
        e1.push(2)
        e2.push(1)
        assert network.total_cost() == pytest.approx(2 * 3.0 + 1 * -1.0)

    def test_outflow(self):
        network = FlowNetwork()
        e1 = network.add_edge("s", "a", 2, 0.0)
        e2 = network.add_edge("a", "t", 2, 0.0)
        e1.push(2)
        e2.push(2)
        assert network.outflow("s") == 2
        assert network.outflow("a") == 0
        assert network.outflow("t") == -2

    def test_reset_flow(self):
        network = FlowNetwork()
        edge = network.add_edge("a", "b", 2, 0.0)
        edge.push(2)
        network.reset_flow()
        assert edge.flow == 0
        assert edge.twin.flow == 0

    def test_forward_edges_iteration(self):
        network = FlowNetwork()
        network.add_edge("a", "b", 1, 0.0)
        network.add_edge("b", "c", 1, 0.0)
        forwards = list(network.forward_edges())
        assert len(forwards) == 2
        assert all(not edge.is_residual for edge in forwards)

    def test_edge_without_twin_raises(self):
        from repro.flow.network import Edge

        orphan = Edge(head="b", tail="a", capacity=1, cost=0.0)
        with pytest.raises(RuntimeError):
            _ = orphan.twin
