"""Quality substrate: voting, simulated answers and the Hoeffding bound.

The LTC algorithms only reason about ``Acc*`` accumulations, but the whole
point of the threshold ``delta = 2*ln(1/epsilon)`` is that weighted majority
voting over the assigned workers then errs with probability below
``epsilon``.  This package closes that loop: it aggregates (possibly
simulated) worker answers by weighted majority voting (Definition 4),
simulates worker answers from their predicted accuracies, and measures the
empirical error rate so tests and examples can confirm the guarantee.
"""

from repro.quality.voting import VoteOutcome, weighted_majority_vote
from repro.quality.answers import AnswerSimulator, simulate_answers
from repro.quality.hoeffding import (
    hoeffding_error_bound,
    required_acc_star,
    empirical_error_rate,
)

__all__ = [
    "VoteOutcome",
    "weighted_majority_vote",
    "AnswerSimulator",
    "simulate_answers",
    "hoeffding_error_bound",
    "required_acc_star",
    "empirical_error_rate",
]
