"""Arrangements between workers and tasks, and their constraints.

An arrangement ``M`` is the set of (worker, task) assignments a solver makes.
This module keeps an arrangement consistent while it is being built
(invariable + capacity constraints, no duplicate pairs), tracks each task's
accumulated ``Acc*`` and answers the questions the paper's objective needs:
is every task completed, and what is the maximum latency (largest arrival
index among used workers)?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.accuracy import AccuracyModel
from repro.core.exceptions import CapacityExceeded, DuplicateAssignment
from repro.core.task import Task
from repro.core.worker import Worker


@dataclass(frozen=True, slots=True)
class Assignment:
    """One (worker, task) pair in an arrangement."""

    worker_index: int
    task_id: int
    acc: float
    acc_star: float

    def as_tuple(self) -> Tuple[int, int]:
        """The ``(worker_index, task_id)`` key of the assignment."""
        return (self.worker_index, self.task_id)


class Arrangement:
    """A mutable task-worker arrangement with constraint enforcement.

    Parameters
    ----------
    tasks:
        The instance's tasks (dense ``task_id`` order is not required, but ids
        must be unique).
    delta:
        The quality threshold each task must accumulate in ``Acc*``.
    accuracy_model:
        Used to evaluate ``Acc``/``Acc*`` when an assignment is added.

    Notes
    -----
    The *invariable constraint* is enforced structurally: there is no way to
    remove an assignment once added.  The *capacity constraint* is enforced on
    every :meth:`assign` call.  The *error-rate constraint* is a property of
    the finished arrangement checked via :meth:`is_complete` /
    :meth:`uncompleted_tasks`.
    """

    def __init__(
        self,
        tasks: Sequence[Task],
        delta: float,
        accuracy_model: AccuracyModel,
    ) -> None:
        if delta <= 0:
            raise ValueError("delta must be positive")
        ids = [task.task_id for task in tasks]
        if len(set(ids)) != len(ids):
            raise ValueError("task ids must be unique")
        self._tasks: Dict[int, Task] = {task.task_id: task for task in tasks}
        self._delta = float(delta)
        self._accuracy_model = accuracy_model
        self._assignments: List[Assignment] = []
        self._pairs: Set[Tuple[int, int]] = set()
        self._accumulated: Dict[int, float] = {task.task_id: 0.0 for task in tasks}
        self._load: Dict[int, int] = {}
        self._workers_by_task: Dict[int, List[int]] = {
            task.task_id: [] for task in tasks
        }
        self._abandoned: Set[int] = set()
        self._max_index_used = 0

    # ------------------------------------------------------------------ state

    @property
    def delta(self) -> float:
        """The quality threshold each task must reach."""
        return self._delta

    @property
    def assignments(self) -> List[Assignment]:
        """All assignments made so far (copy)."""
        return list(self._assignments)

    @property
    def accumulated(self) -> Mapping[int, float]:
        """Accumulated ``Acc*`` per task id (live view, do not mutate)."""
        return self._accumulated

    def __len__(self) -> int:
        return len(self._assignments)

    def __iter__(self) -> Iterator[Assignment]:
        return iter(self._assignments)

    def __contains__(self, pair: Tuple[int, int]) -> bool:
        return pair in self._pairs

    def load_of(self, worker_index: int) -> int:
        """Number of tasks assigned to the worker with ``worker_index``."""
        return self._load.get(worker_index, 0)

    def add_tasks(self, tasks: Sequence[Task]) -> None:
        """Extend the arrangement with newly posted tasks.

        New tasks start with zero accumulated ``Acc*`` and no workers;
        existing assignments and accumulations are untouched, so adding
        tasks mid-stream simply reopens :meth:`is_complete` until the
        newcomers reach the threshold too.  Raises ``ValueError`` when a
        task id is already part of the arrangement.
        """
        incoming = list(tasks)
        seen = set()
        for task in incoming:
            if task.task_id in self._tasks or task.task_id in seen:
                raise ValueError(
                    f"task id {task.task_id} is already part of this arrangement"
                )
            seen.add(task.task_id)
        for task in incoming:
            self._tasks[task.task_id] = task
            self._accumulated[task.task_id] = 0.0
            self._workers_by_task[task.task_id] = []

    def abandon_tasks(self, task_ids: Sequence[int]) -> None:
        """Mark tasks as expired: they no longer block completion.

        The paper's stream model lets tasks carry deadlines — a task whose
        deadline passes before it accumulates ``delta`` is *abandoned*, not
        failed-forever-blocking: it keeps whatever quality it gathered (the
        invariable constraint still forbids removing assignments) but stops
        counting toward :meth:`is_complete` / :meth:`uncompleted_tasks`.
        Abandoning an already-abandoned task is a no-op; abandoning a
        *completed* task is rejected (it finished — there is nothing to
        abandon, and reporting must not reclassify it).  Unknown ids raise
        ``KeyError``.  Further :meth:`assign` calls on an abandoned task
        are refused: an expired task must not receive new work.
        """
        incoming = list(task_ids)
        for task_id in incoming:
            if task_id not in self._tasks:
                raise KeyError(f"task {task_id} is not part of this instance")
            if task_id not in self._abandoned and self.is_task_complete(task_id):
                raise ValueError(
                    f"task {task_id} already reached the quality threshold; "
                    "completed tasks cannot be abandoned"
                )
        self._abandoned.update(incoming)

    def is_task_abandoned(self, task_id: int) -> bool:
        """Whether ``task_id`` was expired via :meth:`abandon_tasks`."""
        return task_id in self._abandoned

    @property
    def abandoned_tasks(self) -> List[int]:
        """Ids of expired tasks, in ascending order."""
        return sorted(self._abandoned)

    def workers_of(self, task_id: int) -> List[int]:
        """Arrival indices of the workers assigned to ``task_id``."""
        return list(self._workers_by_task[task_id])

    def accumulated_of(self, task_id: int) -> float:
        """Accumulated ``Acc*`` of ``task_id``."""
        return self._accumulated[task_id]

    def remaining_of(self, task_id: int) -> float:
        """How much ``Acc*`` the task still needs (0 when completed)."""
        return max(0.0, self._delta - self._accumulated[task_id])

    def is_task_complete(self, task_id: int, tolerance: float = 1e-9) -> bool:
        """Whether ``task_id`` has reached the quality threshold."""
        return self._accumulated[task_id] >= self._delta - tolerance

    def uncompleted_tasks(self, tolerance: float = 1e-9) -> List[int]:
        """Task ids that still need quality: neither completed nor abandoned."""
        if not self._abandoned:
            return [
                task_id
                for task_id, value in self._accumulated.items()
                if value < self._delta - tolerance
            ]
        abandoned = self._abandoned
        return [
            task_id
            for task_id, value in self._accumulated.items()
            if value < self._delta - tolerance and task_id not in abandoned
        ]

    def is_complete(self, tolerance: float = 1e-9) -> bool:
        """Whether every task has reached the quality threshold."""
        return not self.uncompleted_tasks(tolerance)

    # -------------------------------------------------------------- latencies

    @property
    def max_latency(self) -> int:
        """``MinMax(M)``: the largest arrival index among used workers."""
        return self._max_index_used

    def task_latency(self, task_id: int) -> int:
        """Latency of a single task (arrival index of its last worker)."""
        workers = self._workers_by_task[task_id]
        return max(workers) if workers else 0

    def per_task_latencies(self) -> Dict[int, int]:
        """Latency of every task, keyed by task id."""
        return {task_id: self.task_latency(task_id) for task_id in self._tasks}

    # ------------------------------------------------------------- assignment

    def assign(self, worker: Worker, task: Task) -> Assignment:
        """Assign ``task`` to ``worker``, enforcing the LTC constraints.

        Raises
        ------
        DuplicateAssignment
            If the (worker, task) pair was already assigned.
        CapacityExceeded
            If the worker already holds ``capacity`` tasks.
        KeyError
            If the task does not belong to this arrangement's instance.
        """
        if task.task_id not in self._tasks:
            raise KeyError(f"task {task.task_id} is not part of this instance")
        if task.task_id in self._abandoned:
            raise KeyError(
                f"task {task.task_id} expired before completion; abandoned "
                "tasks cannot receive new assignments"
            )
        pair = (worker.index, task.task_id)
        if pair in self._pairs:
            raise DuplicateAssignment(
                f"worker {worker.index} already performs task {task.task_id}"
            )
        load = self._load.get(worker.index, 0)
        if load >= worker.capacity:
            raise CapacityExceeded(
                f"worker {worker.index} already holds {load} tasks "
                f"(capacity {worker.capacity})"
            )

        acc = self._accuracy_model.accuracy(worker, task)
        star = self._accuracy_model.acc_star(worker, task)
        assignment = Assignment(
            worker_index=worker.index,
            task_id=task.task_id,
            acc=acc,
            acc_star=star,
        )
        self._assignments.append(assignment)
        self._pairs.add(pair)
        self._accumulated[task.task_id] += star
        self._load[worker.index] = load + 1
        self._workers_by_task[task.task_id].append(worker.index)
        self._max_index_used = max(self._max_index_used, worker.index)
        return assignment

    def can_assign(self, worker: Worker, task: Task) -> bool:
        """Whether :meth:`assign` would succeed for this pair."""
        if task.task_id not in self._tasks or task.task_id in self._abandoned:
            return False
        if (worker.index, task.task_id) in self._pairs:
            return False
        return self._load.get(worker.index, 0) < worker.capacity

    # --------------------------------------------------------------- analysis

    def constraint_violations(
        self, workers: Mapping[int, Worker], tolerance: float = 1e-9
    ) -> List[str]:
        """Re-check every LTC constraint from scratch (for tests/validation).

        Parameters
        ----------
        workers:
            Mapping from worker index to :class:`Worker` for capacity checks.
        """
        violations: List[str] = []
        loads: Dict[int, int] = {}
        seen: Set[Tuple[int, int]] = set()
        accumulated: Dict[int, float] = {task_id: 0.0 for task_id in self._tasks}

        for assignment in self._assignments:
            key = assignment.as_tuple()
            if key in seen:
                violations.append(f"duplicate assignment {key}")
            seen.add(key)
            loads[assignment.worker_index] = loads.get(assignment.worker_index, 0) + 1
            accumulated[assignment.task_id] += assignment.acc_star

        for worker_index, load in loads.items():
            worker = workers.get(worker_index)
            if worker is None:
                violations.append(f"unknown worker index {worker_index}")
            elif load > worker.capacity:
                violations.append(
                    f"worker {worker_index} holds {load} tasks, capacity "
                    f"{worker.capacity}"
                )

        for task_id, value in accumulated.items():
            if value < self._delta - tolerance and task_id not in self._abandoned:
                violations.append(
                    f"task {task_id} accumulated {value:.4f} < delta {self._delta:.4f}"
                )

        return violations

    def summary(self) -> dict[str, float]:
        """Headline numbers for reports."""
        return {
            "assignments": float(len(self._assignments)),
            "max_latency": float(self.max_latency),
            "workers_used": float(len(self._load)),
            "tasks_completed": float(
                len(self._tasks)
                - len(self.uncompleted_tasks())
                - len(self._abandoned)
            ),
            "tasks_abandoned": float(len(self._abandoned)),
            "tasks_total": float(len(self._tasks)),
        }
