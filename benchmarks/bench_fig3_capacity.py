"""Regenerates Fig. 3b/3f/3j of the paper: latency / runtime / memory vs the worker capacity K.

The benchmark times the full regeneration (workload generation plus all five
algorithms across the sweep) and writes the rendered series to
``benchmarks/results/fig3_capacity.txt``.
"""

import pytest


@pytest.mark.benchmark(group="fig3_capacity")
def test_regenerate_fig3_capacity(benchmark, figure_runner):
    table = benchmark.pedantic(
        lambda: figure_runner("fig3_capacity"), rounds=1, iterations=1
    )
    assert len(table) > 0
    assert table.completion_rate() == 1.0
