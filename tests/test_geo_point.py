"""Tests for repro.geo.point and repro.geo.distance."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geo.distance import euclidean, manhattan, squared_euclidean
from repro.geo.point import Point

finite_coord = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestPoint:
    def test_distance_to_matches_hypot(self):
        a = Point(0.0, 0.0)
        b = Point(3.0, 4.0)
        assert a.distance_to(b) == pytest.approx(5.0)

    def test_distance_is_symmetric(self):
        a = Point(1.5, -2.0)
        b = Point(-3.25, 7.0)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_squared_distance_is_square_of_distance(self):
        a = Point(1.0, 2.0)
        b = Point(4.0, 6.0)
        assert a.squared_distance_to(b) == pytest.approx(a.distance_to(b) ** 2)

    def test_manhattan_distance(self):
        assert Point(0, 0).manhattan_distance_to(Point(3, -4)) == pytest.approx(7.0)

    def test_translate_returns_new_point(self):
        p = Point(1.0, 1.0)
        q = p.translate(2.0, -1.0)
        assert q == Point(3.0, 0.0)
        assert p == Point(1.0, 1.0)

    def test_as_tuple_and_iter(self):
        p = Point(2.0, 3.0)
        assert p.as_tuple() == (2.0, 3.0)
        assert tuple(p) == (2.0, 3.0)

    def test_origin_and_from_tuple(self):
        assert Point.origin() == Point(0.0, 0.0)
        assert Point.from_tuple((1, 2)) == Point(1.0, 2.0)

    def test_points_are_hashable_and_frozen(self):
        p = Point(1.0, 2.0)
        assert {p: "x"}[Point(1.0, 2.0)] == "x"
        with pytest.raises(AttributeError):
            p.x = 5.0  # type: ignore[misc]

    @given(finite_coord, finite_coord, finite_coord, finite_coord)
    def test_triangle_inequality(self, ax, ay, bx, by):
        a = Point(ax, ay)
        b = Point(bx, by)
        origin = Point.origin()
        assert a.distance_to(b) <= a.distance_to(origin) + origin.distance_to(b) + 1e-6


class TestDistanceFunctions:
    def test_euclidean_accepts_points_and_sequences(self):
        assert euclidean(Point(0, 0), (3, 4)) == pytest.approx(5.0)
        assert euclidean((0, 0), [3, 4]) == pytest.approx(5.0)

    def test_squared_euclidean(self):
        assert squared_euclidean((1, 1), (4, 5)) == pytest.approx(25.0)

    def test_manhattan(self):
        assert manhattan((0, 0), (1, -2)) == pytest.approx(3.0)

    @given(finite_coord, finite_coord, finite_coord, finite_coord)
    def test_euclidean_never_exceeds_manhattan(self, ax, ay, bx, by):
        assert euclidean((ax, ay), (bx, by)) <= manhattan((ax, ay), (bx, by)) + 1e-9

    @given(finite_coord, finite_coord)
    def test_distance_to_self_is_zero(self, x, y):
        assert euclidean((x, y), (x, y)) == 0.0
