"""Tests for repro.analysis.instance_stats."""

import pytest

from repro.analysis.instance_stats import compute_instance_stats
from repro.core.accuracy import ConstantAccuracy, SigmoidDistanceAccuracy
from repro.core.instance import LTCInstance
from repro.core.task import Task
from repro.core.worker import Worker
from repro.geo.point import Point


class TestComputeInstanceStats:
    def test_constant_accuracy_instance(self, tiny_instance):
        stats = compute_instance_stats(tiny_instance)
        assert stats.num_tasks == 2
        assert stats.num_workers == 6
        # Every worker can perform every task.
        assert stats.eligible_workers_per_task["min"] == 6
        assert stats.candidate_tasks_per_worker["mean"] == pytest.approx(2.0)
        assert stats.contention_ratio == pytest.approx(2.0 / tiny_instance.capacity)
        # 6 workers x capacity 2 x Acc* 0.64 vs 2 tasks x delta 3.22.
        assert stats.feasibility_margin == pytest.approx(
            (6 * 2 * 0.64) / (2 * tiny_instance.delta)
        )

    def test_detects_starved_tasks(self):
        """A task reachable by exactly the number of answers it needs is starved."""
        tasks = [Task.at(0, 0.0, 0.0), Task.at(1, 200.0, 0.0)]
        workers = (
            [Worker.at(i, 0.0, 0.0, accuracy=0.9, capacity=2) for i in range(1, 11)]
            + [Worker.at(11, 200.0, 0.0, accuracy=0.9, capacity=2)]
        )
        # Workers re-indexed to arrival order 1..11 already; task 1 has a
        # single nearby worker, far fewer than delta / Acc* ~= 5 answers.
        instance = LTCInstance(
            tasks=tasks, workers=workers, error_rate=0.2,
            accuracy_model=SigmoidDistanceAccuracy(d_max=30.0),
        )
        stats = compute_instance_stats(instance)
        assert 1 in stats.starved_tasks
        assert 0 not in stats.starved_tasks
        assert stats.feasibility_margin < 10  # sanity: finite, sensible value

    def test_describe_is_informative(self, small_synthetic_instance):
        stats = compute_instance_stats(small_synthetic_instance)
        text = stats.describe()
        assert "tasks" in text and "contention" in text and "feasibility" in text

    def test_generated_instances_are_feasible_by_construction(
        self, small_synthetic_instance
    ):
        stats = compute_instance_stats(small_synthetic_instance)
        assert stats.feasibility_margin > 1.0
        assert stats.eligible_workers_per_task["min"] >= 1

    def test_spatial_index_toggle_gives_identical_stats(self, small_synthetic_instance):
        fast = compute_instance_stats(small_synthetic_instance, use_spatial_index=True)
        slow = compute_instance_stats(small_synthetic_instance, use_spatial_index=False)
        assert fast.eligible_workers_per_task == slow.eligible_workers_per_task
        assert fast.contention_ratio == pytest.approx(slow.contention_ratio)
        assert fast.starved_tasks == slow.starved_tasks

    def test_unreachable_task_is_reported_starved(self):
        tasks = [Task.at(0, 0.0, 0.0), Task.at(1, 500.0, 500.0)]
        workers = [Worker.at(i, 0.0, 0.0, accuracy=0.9, capacity=1) for i in (1, 2, 3)]
        instance = LTCInstance(
            tasks=tasks, workers=workers, error_rate=0.3,
            accuracy_model=SigmoidDistanceAccuracy(d_max=30.0),
        )
        stats = compute_instance_stats(instance)
        assert 1 in stats.starved_tasks
