"""Pure-python candidate backend — the semantics oracle.

This backend *is* the candidate contract: it walks the engine's flat
arrays with the pinned scalar float expressions
(:meth:`~repro.core.candidate_engine.engine.CandidateEngine.scalar_accuracy`
and friends) in the pinned iteration orders, and the pre-engine
``CandidateFinder`` scan is differentially tested against it.  It is also
meaningfully faster than that scan — CSR row slices replace dict-of-list
cell lookups and the inlined sigmoid replaces ``Point``/``Task`` attribute
chasing — so "scalar" does not mean "slow", just "no numpy".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.core.candidate_engine.base import CandidateBackend
from repro.structures.topk import TopKHeap

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.core.candidate_engine.engine import CandidateEngine
    from repro.core.worker import Worker


class PythonCandidateBackend(CandidateBackend):
    """Scalar loops over the engine's arrays; always available."""

    name = "python"

    def eligible_positions(
        self,
        engine: "CandidateEngine",
        worker: "Worker",
        allowed: Optional[Sequence[bool]] = None,
        ordered: bool = True,
    ) -> List[int]:
        if engine.mode == "grid":
            radius = engine.radius_of(worker)
            if radius < 0:
                return []
            # The grid gather already skips tombstoned positions.
            block = engine.grid_block_positions(
                worker.location.x, worker.location.y, radius
            )
            if ordered:
                engine.sort_positions(block)
            pool_is_alive = True
        else:
            block = engine.instance_positions
            pool_is_alive = engine.dead_count == 0
        scalar_eligible = engine.scalar_eligible
        if pool_is_alive:
            if allowed is None:
                return [p for p in block if scalar_eligible(worker, p)]
            return [p for p in block if allowed[p] and scalar_eligible(worker, p)]
        alive = engine.alive
        if allowed is None:
            return [p for p in block if alive[p] and scalar_eligible(worker, p)]
        return [
            p
            for p in block
            if alive[p] and allowed[p] and scalar_eligible(worker, p)
        ]

    def has_candidates(self, engine: "CandidateEngine", worker: "Worker") -> bool:
        scalar_eligible = engine.scalar_eligible
        alive = engine.alive
        has_dead = engine.dead_count > 0
        if engine.mode == "grid":
            radius = engine.radius_of(worker)
            if radius < 0:
                return False
            # Unordered short-circuit straight off the CSR rows: no list is
            # built and the first eligible task wins.
            wx, wy = worker.location.x, worker.location.y
            col0, col1, row0, row1 = engine.cell_span(wx, wy, radius)
            r2 = radius * radius
            xs, ys = engine.xs, engine.ys
            start, order = engine.cell_start, engine.cell_positions
            assert start is not None and order is not None
            for row in range(row0, row1 + 1):
                base = row * engine.cols
                for p in order[start[base + col0] : start[base + col1 + 1]]:
                    if has_dead and not alive[p]:
                        continue
                    dx = xs[p] - wx
                    dy = ys[p] - wy
                    if dx * dx + dy * dy <= r2 and scalar_eligible(worker, p):
                        return True
            # Spill positions appended since the last grid rebuild.
            for p in range(engine.spill_start, engine.num_tasks):
                if has_dead and not alive[p]:
                    continue
                dx = xs[p] - wx
                dy = ys[p] - wy
                if dx * dx + dy * dy <= r2 and scalar_eligible(worker, p):
                    return True
            return False
        if has_dead:
            return any(
                alive[p] and scalar_eligible(worker, p)
                for p in engine.instance_positions
            )
        return any(
            scalar_eligible(worker, p) for p in engine.instance_positions
        )

    def topk(
        self,
        engine: "CandidateEngine",
        worker: "Worker",
        k: int,
        mode: str = "acc_star",
        completed: Optional[Sequence[bool]] = None,
        need: Optional[Sequence[float]] = None,
    ) -> List[int]:
        positions = self.eligible_positions(engine, worker, None, True)
        return self.rescore_topk(engine, worker, positions, k, mode, completed, need)

    @staticmethod
    def rescore_topk(
        engine: "CandidateEngine",
        worker: "Worker",
        positions: Sequence[int],
        k: int,
        mode: str,
        completed: Optional[Sequence[bool]],
        need: Optional[Sequence[float]],
    ) -> List[int]:
        """Scalar-score ``positions`` (in the given order) through the heap.

        Shared with the numpy backend's rescoring pass: it feeds its
        preselected superset through this exact loop, which is what makes
        the two backends' pop orders identical.
        """
        if mode not in ("acc_star", "gain", "need"):
            raise ValueError(f"unknown topk mode {mode!r}")
        if mode in ("gain", "need") and need is None:
            raise ValueError(f"topk mode {mode!r} requires a need array")
        heap: TopKHeap = TopKHeap(k)
        acc_star = engine.scalar_acc_star
        for p in positions:
            if completed is not None and completed[p]:
                continue
            if mode == "acc_star":
                score = acc_star(worker, p)
            elif mode == "gain":
                score = min(acc_star(worker, p), float(need[p]))
            else:
                score = float(need[p])
            heap.push(score, p)
        return [p for _, p in heap.pop_all()]
