"""Incremental solving sessions — the service-facing protocol.

The paper's setting is inherently a service: tasks are posted, workers check
in one at a time, and every assignment is an irrevocable online decision.  A
:class:`Session` is the uniform incremental surface over that loop:

* :meth:`Session.submit_tasks` posts additional tasks.  Before the first
  worker arrives this is always legal (the tasks are staged into the
  effective instance); afterwards it stays legal exactly for sessions
  over *dynamic* online solvers (those with ``supports_dynamic_tasks``,
  whose candidate state rides the incremental engine) — the new tasks
  join the live snapshot without a rebuild and serving continues.
  Sessions over offline replay plans refuse mid-stream tasks: their plan
  was computed for a fixed future;
* :meth:`Session.on_worker` feeds one arriving worker and returns the
  assignments committed for it;
* :meth:`Session.snapshot` reports cheap progress counters at any point;
* :meth:`Session.result` finalises the run into a
  :class:`~repro.algorithms.base.SolveResult`.

Prior assignments are never revisited: submitting tasks mid-stream only
*reopens* completion (the newcomers still need quality), it cannot
invalidate a committed decision.  See ``docs/sessions.md`` for the full
lifecycle, including how the dispatcher drives many such sessions.

Every solver opens sessions through
:meth:`~repro.algorithms.base.Solver.open_session`: online solvers implement
the protocol natively (each ``on_worker`` call is one greedy decision), while
offline solvers are adapted through a replay session that plans on the full
instance and replays the plan arrival by arrival.  The simulation engine,
the experiment runner and the :mod:`repro.service` dispatch layer all drive
solvers through this one API.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Sequence

from repro.core.arrangement import Assignment
from repro.core.task import Task
from repro.core.worker import Worker

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (annotations only)
    from repro.algorithms.base import SolveResult


class SessionStateError(RuntimeError):
    """An operation was issued in a state the session cannot honour.

    Raised e.g. when tasks are submitted mid-stream to a session whose
    solver cannot extend its task set (offline replay plans, non-dynamic
    online solvers) or when a replay session is fed a stream that differs
    from the one its plan was computed on.
    """


@dataclass(frozen=True, slots=True)
class SessionSnapshot:
    """Cheap progress counters of a session at one point in time."""

    algorithm: str
    workers_observed: int
    num_assignments: int
    tasks_total: int
    tasks_completed: int
    max_latency: int
    complete: bool
    #: Tasks expired via :meth:`Session.expire_tasks` (deadline passed
    #: before the quality threshold was reached).  Abandoned tasks count
    #: neither as completed nor as remaining.
    tasks_abandoned: int = 0

    @property
    def tasks_remaining(self) -> int:
        """Open tasks: neither completed nor abandoned."""
        return self.tasks_total - self.tasks_completed - self.tasks_abandoned

    def summary(self) -> Dict[str, float]:
        """Flat numbers for logs and service metrics."""
        return {
            "workers_observed": float(self.workers_observed),
            "assignments": float(self.num_assignments),
            "tasks_total": float(self.tasks_total),
            "tasks_completed": float(self.tasks_completed),
            "tasks_abandoned": float(self.tasks_abandoned),
            "max_latency": float(self.max_latency),
            "complete": float(self.complete),
        }


class Session(abc.ABC):
    """One incremental solve: tasks posted up front, workers fed one by one."""

    @property
    @abc.abstractmethod
    def algorithm(self) -> str:
        """Registry name of the solver serving this session."""

    @property
    @abc.abstractmethod
    def is_complete(self) -> bool:
        """Whether feeding further workers can no longer change the outcome."""

    @abc.abstractmethod
    def submit_tasks(self, tasks: Sequence[Task]) -> None:
        """Post additional tasks to the session.

        Always legal before the first worker arrives (tasks are staged
        into the effective instance).  After the first arrival it remains
        legal for sessions over dynamic online solvers — the tasks join
        the live candidate snapshot in place and the session's completion
        state reopens until they too reach the quality threshold.

        Raises
        ------
        SessionStateError
            If a worker has already been observed and the serving solver
            cannot extend its task set mid-stream (offline replay plans
            are computed for a fixed future; non-dynamic online solvers
            froze their snapshot at activation).
        ValueError
            If a submitted task id is already posted.
        """

    def expire_tasks(self, task_ids: Sequence[int]) -> List[int]:
        """Expire overdue tasks (the deadline/TTL sweep); return expired ids.

        Expired tasks are *abandoned*: they keep whatever quality they
        accumulated, stop blocking completion, refuse further assignments
        and vanish from every candidate query (the engine's tombstone
        retirement).  Already-completed and already-expired ids are
        skipped, so the returned list is the honest abandonment increment
        for latency-vs-abandonment reporting.

        Legal for sessions over expiry-capable online solvers
        (``supports_task_expiry``); the default — replay sessions over
        offline plans, non-dynamic online solvers — refuses.

        Raises
        ------
        SessionStateError
            If the serving solver cannot abandon live tasks (an offline
            replay plan was computed for a fixed task set).
        KeyError
            If a task id was never posted to the session.
        """
        raise SessionStateError(
            f"session over solver {self.algorithm!r} cannot expire tasks: "
            "the solver does not support mid-stream task expiry"
        )

    @abc.abstractmethod
    def on_worker(self, worker: Worker) -> List[Assignment]:
        """Feed one arriving worker; return the assignments committed for it."""

    @abc.abstractmethod
    def snapshot(self) -> SessionSnapshot:
        """Current progress counters (does not advance the session)."""

    @abc.abstractmethod
    def result(self) -> "SolveResult":
        """Finalise the run so far into a solve result."""

    def drive(
        self,
        workers: Iterable[Worker],
        stop_when_complete: bool = True,
    ) -> "SolveResult":
        """Feed a whole worker stream and return the final result.

        Stops at the first worker after which the session is complete (the
        paper's setting), or when the stream is exhausted.  Pass
        ``stop_when_complete=False`` to consume the entire stream.
        """
        for worker in workers:
            self.on_worker(worker)
            if stop_when_complete and self.is_complete:
                break
        return self.result()
