"""Minimum-cost-flow substrate.

MCF-LTC (Algorithm 1 in the paper) reduces each batch of workers to a
minimum-cost-flow instance and solves it with the Successive Shortest Path
Algorithm (SSPA).  This package implements that substrate from scratch,
around a flat array kernel:

* :class:`ArcArena` / :func:`solve_mcf` — the kernel: parallel
  ``head``/``cost``/``cap``/``flow`` arrays indexed by arc id, residual
  twins at ``arc ^ 1``, CSR adjacency, SSPA with warm Johnson potentials
  and deterministic tie-breaking.  Initial potentials come from
  :func:`bellman_ford_potentials` (general graphs) or
  :func:`dag_potentials` (one O(E) pass for the LTC reduction's 3-layer
  DAG).
* :mod:`repro.flow.backends` — pluggable, bit-exact implementations of the
  SSPA inner loop behind :func:`solve_mcf`: the pure-Python reference loop
  and a numpy-vectorized one, selected via ``backend=`` / the
  ``REPRO_FLOW_BACKEND`` environment variable / auto-detection
  (:func:`resolve_backend`, :func:`available_backends`).
* :class:`FlowNetwork` / :func:`successive_shortest_paths` — the
  label-addressed compatibility layer over the kernel, for callers that
  want hashable node labels and edge objects.
* :func:`validate_flow` / :func:`validate_arena_flow` — independent
  verification of capacity/conservation constraints, used by the
  test-suite and by debugging assertions.
* :mod:`repro.flow.reference` — the pre-kernel object-graph SSPA, retained
  as a differential-testing oracle and benchmark baseline (not re-exported
  here; import it explicitly).
"""

from repro.flow.kernel import (
    ArcArena,
    KernelFlowResult,
    bellman_ford_potentials,
    dag_potentials,
    solve_mcf,
)
from repro.flow.backends import (
    BACKEND_ENV_VAR,
    KernelBackend,
    available_backends,
    default_backend_name,
    get_backend,
    register_backend,
    registered_backends,
    resolve_backend,
)
from repro.flow.network import Edge, FlowNetwork
from repro.flow.sspa import FlowResult, successive_shortest_paths, min_cost_flow
from repro.flow.validate import validate_arena_flow, validate_flow, FlowViolation
from repro.flow.exceptions import (
    BackendUnavailableError,
    FlowError,
    InfeasibleFlowError,
    NegativeCycleError,
)

__all__ = [
    "ArcArena",
    "KernelFlowResult",
    "bellman_ford_potentials",
    "dag_potentials",
    "solve_mcf",
    "BACKEND_ENV_VAR",
    "KernelBackend",
    "available_backends",
    "default_backend_name",
    "get_backend",
    "register_backend",
    "registered_backends",
    "resolve_backend",
    "BackendUnavailableError",
    "Edge",
    "FlowNetwork",
    "FlowResult",
    "successive_shortest_paths",
    "min_cost_flow",
    "validate_flow",
    "validate_arena_flow",
    "FlowViolation",
    "FlowError",
    "NegativeCycleError",
    "InfeasibleFlowError",
]
