"""The paper's running example (Fig. 1, Tables I/II, Examples 1-4).

Three POI tasks (Think Cafe, Yee Shun Restaurant, SOGO Hong Kong) and eight
workers arriving in order, with per-pair accuracies given by Table I, every
worker willing to answer at most two questions, and (for Examples 2-4) a
tolerable error rate of 0.2.  The example is used by tests to check the
worked results in the paper: LAF needs 8 workers, AAM needs 7, MCF-LTC
needs 6.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.accuracy import TabularAccuracy
from repro.core.instance import LTCInstance
from repro.core.task import Task
from repro.core.worker import Worker
from repro.geo.point import Point

#: Table I of the paper: historical accuracy of each worker on each task.
#: Keys are (worker_index, task_id) with task ids 0..2 standing for t1..t3.
TABLE_I: Dict[Tuple[int, int], float] = {
    # t1 (Think Cafe)
    (1, 0): 0.96, (2, 0): 0.98, (3, 0): 0.98, (4, 0): 0.98,
    (5, 0): 0.96, (6, 0): 0.96, (7, 0): 0.94, (8, 0): 0.94,
    # t2 (Yee Shun Restaurant)
    (1, 1): 0.98, (2, 1): 0.96, (3, 1): 0.96, (4, 1): 0.98,
    (5, 1): 0.94, (6, 1): 0.96, (7, 1): 0.96, (8, 1): 0.94,
    # t3 (SOGO Hong Kong)
    (1, 2): 0.96, (2, 2): 0.96, (3, 2): 0.96, (4, 2): 0.98,
    (5, 2): 0.94, (6, 2): 0.94, (7, 2): 0.96, (8, 2): 0.96,
}

#: Capacity used throughout the example: each worker answers at most 2 tasks.
EXAMPLE_CAPACITY = 2

#: Tolerable error rate used in Examples 2-4 (delta = 2*ln(5) ~= 3.22).
EXAMPLE_ERROR_RATE = 0.2

#: Task names in the example, in task-id order.
EXAMPLE_TASK_NAMES = ("Think Cafe", "Yee Shun Restaurant", "SOGO Hong Kong")


def running_example_instance(
    error_rate: float = EXAMPLE_ERROR_RATE,
    capacity: int = EXAMPLE_CAPACITY,
) -> LTCInstance:
    """Build the paper's 3-task / 8-worker running example.

    Locations are symbolic (the accuracy model reads Table I directly, so
    distances do not matter); they are laid out on a small line to keep the
    example printable.
    """
    tasks = [
        Task(
            task_id=i,
            location=Point(float(10 * i), 0.0),
            description=f"Question about {EXAMPLE_TASK_NAMES[i]}",
        )
        for i in range(3)
    ]
    workers = [
        Worker(
            index=i,
            location=Point(float(i), 1.0),
            accuracy=0.95,
            capacity=capacity,
        )
        for i in range(1, 9)
    ]
    return LTCInstance(
        tasks=tasks,
        workers=workers,
        error_rate=error_rate,
        accuracy_model=TabularAccuracy(TABLE_I),
        name="paper running example (Tables I/II)",
    )


#: Latencies the paper reports for the running example with epsilon = 0.2
#: (Examples 2-4).
PAPER_REPORTED_LATENCIES = {
    "mcf_ltc": 6,   # Example 2
    "laf": 8,       # Example 3
    "aam": 7,       # Example 4
}

#: Latencies this implementation reproduces exactly.  LAF matches the paper.
#: The other two differ from the prose of Examples 2 and 4 for reasons rooted
#: in the paper's own text (documented in EXPERIMENTS.md, "Running example"):
#:
#: * MCF-LTC: the paper's Fig. 2b shows a flow using only workers 1-6, but
#:   that flow is *not* cost-optimal for Table I — the true minimum-cost flow
#:   (total Acc* 10.53 vs 10.46) necessarily uses worker 7 or 8, so a correct
#:   SSPA returns latency 7 (with low-index tie-breaking).
#: * AAM: Algorithm 3's avg/maxRemain rule switches to LRF already at the
#:   third worker (avg = 3.06 < maxRemain = 3.22), whereas the Example 4
#:   narrative keeps LGF for three workers; following the pseudo-code yields
#:   latency 6, which equals the optimum found by the exact solver.
EXPECTED_LATENCIES = {
    "mcf_ltc": 7,
    "laf": 8,
    "aam": 6,
}
