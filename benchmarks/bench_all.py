"""Unified benchmark orchestrator with a perf-regression gate.

Runs every registered microbenchmark suite (``flow_kernel``,
``candidates``, ``dynamic_sessions``, ``dispatch_scale``,
``resilience`` — each a thin module over :mod:`_common`) through one
command and emits one
consolidated report in the shared schema: per-section median timings and
speedups-vs-named-baseline under ``"<suite>.<section>"`` keys, per-suite
exactness fingerprints, and one environment block (python/numpy
versions, CPU count, git SHA).

Before running anything it verifies prerequisites: numpy importable,
both backend registries populated, the output directory writable, and —
under ``--check`` — the baseline report present.

Modes::

    # The full consolidated report (the committed BENCH_all.json):
    PYTHONPATH=src python benchmarks/bench_all.py

    # The CI-sized run (suites at their smoke configurations):
    PYTHONPATH=src python benchmarks/bench_all.py --smoke \
        --output benchmarks/results/all_smoke.json

    # Run + regression gate against the committed smoke baseline:
    PYTHONPATH=src python benchmarks/bench_all.py --smoke --check

    # Gate an already-written report without re-running the suites:
    PYTHONPATH=src python benchmarks/bench_all.py --smoke --check \
        --fresh benchmarks/results/all_smoke.json

The gate (``--check``) is ratio-based: every speedup recorded in the
baseline must be reproduced within a noise fraction (``--noise``,
default ``0.45``; per-section/per-key overrides via ``--noise-override
'section=0.3'`` / ``'section.key=0.3'``), a baseline section missing
from the fresh report is an error, and per-suite exactness fingerprints
must match bit-for-bit whenever the configs match.  Baselines default to
``benchmarks/baselines/all_smoke.json`` for smoke runs and the committed
``BENCH_all.json`` for full runs; see ``docs/benchmarks.md`` for how to
refresh them.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import _common

# Importing the suite modules registers them with _common's registry.
import bench_flow_kernel  # noqa: F401
import bench_candidates  # noqa: F401
import bench_dynamic_sessions  # noqa: F401
import bench_dispatch_scale  # noqa: F401
import bench_resilience  # noqa: F401

DESCRIPTION = (
    "One consolidated run of every registered microbenchmark suite: "
    "per-section median timings and speedups vs each suite's named "
    "baseline implementation, per-suite exactness fingerprints, and "
    "shared environment metadata. Section keys are namespaced "
    "'<suite>.<section>'; the regression gate (--check) compares "
    "speedups ratio-wise against a committed baseline report."
)


def verify_prerequisites(check: bool, baseline_path: Path,
                         output: Path) -> list:
    """Snippet-3-style prerequisite table; returns the list of failures."""
    checks = []

    numpy = _common.numpy_version()
    checks.append(("numpy importable", numpy is not None,
                   numpy or "pip install numpy (suites time the numpy "
                            "backends against the python baselines)"))

    try:
        from repro.flow.backends import available_backends
        flow = sorted(available_backends())
    except Exception as exc:  # pragma: no cover - import errors only
        flow = []
        checks.append(("flow backend registry", False, repr(exc)))
    if flow:
        checks.append(("flow backend registry", "python" in flow,
                       ", ".join(flow)))

    try:
        from repro.core.candidate_engine import available_candidate_backends
        cand = sorted(available_candidate_backends())
    except Exception as exc:  # pragma: no cover - import errors only
        cand = []
        checks.append(("candidate backend registry", False, repr(exc)))
    if cand:
        checks.append(("candidate backend registry", "python" in cand,
                       ", ".join(cand)))

    writable = True
    try:
        output.parent.mkdir(parents=True, exist_ok=True)
        probe = output.parent / f".bench_all_probe_{output.name}"
        probe.write_text("")
        probe.unlink()
    except OSError as exc:
        writable = False
        detail = repr(exc)
    checks.append(("output directory writable", writable,
                   str(output.parent) if writable else detail))

    if check:
        checks.append(("baseline report present", baseline_path.is_file(),
                       str(baseline_path)))

    failures = []
    print("=== prerequisites ===")
    for label, ok, detail in checks:
        print(f"  [{'ok' if ok else 'FAIL'}] {label}: {detail}")
        if not ok:
            failures.append(label)
    return failures


def run_suites(suites, *, smoke: bool, repeats):
    """Run each suite at its orchestrated config; returns per-suite results."""
    results = {}
    for suite in suites:
        namespace = _common.suite_namespace(suite, smoke=smoke,
                                            repeats=repeats)
        print(f"\n=== suite: {suite.name} ===")
        start = time.perf_counter()
        results[suite.name] = (suite.run(namespace), namespace)
        print(f"suite {suite.name} finished in "
              f"{time.perf_counter() - start:.1f}s")
    return results


def consolidate(results, *, mode: str, only) -> dict:
    """Merge per-suite results into one report in the shared schema."""
    sections = {}
    headline = {}
    fingerprints = {}
    suite_configs = {}
    for name, (result, _namespace) in results.items():
        suite_configs[name] = result.config
        fingerprints[name] = _common.fingerprint(result.fingerprint_payload)
        for section_name, section in result.sections.items():
            sections[f"{name}.{section_name}"] = section
        for key, value in result.headline_speedups.items():
            headline[f"{name}.{key}"] = value
    return {
        "schema_version": _common.SCHEMA_VERSION,
        "benchmark": "all",
        "description": DESCRIPTION,
        "mode": mode,
        "config": {
            "only": sorted(results) if only else None,
            "suites": suite_configs,
        },
        "environment": _common.environment_metadata(),
        "sections": sections,
        "headline_speedups": headline,
        "fingerprints": fingerprints,
    }


def run_check(baseline: dict, fresh: dict, *, noise: float,
              overrides, skip_fingerprints: bool) -> int:
    comparison = _common.compare_reports(
        baseline, fresh, noise=noise, overrides=overrides,
        check_fingerprints=not skip_fingerprints,
    )
    print(f"\n=== regression gate ({comparison.checked} gated speedups) ===")
    for note in comparison.notes:
        print(f"  [ok] {note}")
    for problem in comparison.problems:
        print(f"  [FAIL] {problem}")
    if comparison.ok:
        print("gate: PASS")
        return 0
    print(f"gate: FAIL ({len(comparison.problems)} problem(s))")
    return 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.ArgumentDefaultsHelpFormatter,
    )
    parser.add_argument("--smoke", action="store_true",
                        help="run every suite at its small CI-sized "
                             "configuration")
    parser.add_argument("--only", nargs="+", metavar="SUITE",
                        help="run only the named suites (unknown names get "
                             "a did-you-mean error)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="override every suite's timed repetitions")
    parser.add_argument("--output", type=Path, default=None,
                        help="where to write the consolidated report "
                             "(default: BENCH_all.json for full runs, "
                             "benchmarks/results/all_smoke.json for --smoke)")
    parser.add_argument("--list", action="store_true",
                        help="list registered suites and exit")
    parser.add_argument("--check", action="store_true",
                        help="compare against the committed baseline report "
                             "and exit non-zero on regression")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="baseline report for --check (default: "
                             "benchmarks/baselines/all_smoke.json with "
                             "--smoke, BENCH_all.json otherwise)")
    parser.add_argument("--fresh", type=Path, default=None,
                        help="with --check: gate this already-written report "
                             "instead of re-running the suites")
    parser.add_argument("--noise", type=float, default=_common.DEFAULT_NOISE,
                        help="allowed fractional speedup regression before "
                             "the gate trips")
    parser.add_argument("--noise-override", action="append", default=[],
                        metavar="SECTION[.KEY]=FRACTION",
                        help="per-section (or per-speedup-key) noise "
                             "threshold, e.g. 'flow_kernel.sparse=0.3'; "
                             "repeatable")
    parser.add_argument("--skip-fingerprints", action="store_true",
                        help="do not gate on exactness fingerprints")
    args = parser.parse_args(argv)

    if args.list:
        print("registered benchmark suites:")
        for name, suite in sorted(_common.registered_suites().items()):
            print(f"  {name:>18}  {suite.description.splitlines()[0]}")
        return 0

    try:
        suites = _common.select_suites(args.only)
    except _common.UnknownSuiteError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        overrides = _common.parse_noise_overrides(args.noise_override)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    mode = "smoke" if args.smoke else "full"
    output = args.output
    if output is None:
        if args.check or args.smoke:
            # Never silently overwrite a committed baseline while gating
            # against it.
            output = _common.RESULTS_DIR / f"all_{mode}.json"
        else:
            output = _common.FULL_REPORT
    baseline_path = args.baseline
    if baseline_path is None:
        baseline_path = (_common.SMOKE_BASELINE if args.smoke
                         else _common.FULL_REPORT)

    failures = verify_prerequisites(args.check, baseline_path, output)
    if failures:
        print(f"\nprerequisites failed: {', '.join(failures)}",
              file=sys.stderr)
        return 2

    baseline = None
    if args.check:
        baseline = _common.load_report(baseline_path)

    if args.check and args.fresh is not None:
        fresh = _common.load_report(args.fresh)
    else:
        started = time.perf_counter()
        results = run_suites(suites, smoke=args.smoke, repeats=args.repeats)
        fresh = consolidate(results, mode=mode, only=args.only)
        _common.write_report(output, fresh)
        print(f"\nwrote {output} "
              f"({time.perf_counter() - started:.1f}s total)")
        print("headline speedups:")
        for key, value in fresh["headline_speedups"].items():
            print(f"  {key:>55}  {value:>6.2f}x")

    if args.check:
        return run_check(baseline, fresh, noise=args.noise,
                         overrides=overrides,
                         skip_fingerprints=args.skip_fingerprints)
    return 0


if __name__ == "__main__":
    sys.exit(main())
