"""Solvers for the LTC problem.

Offline (the full worker sequence is known in advance):

* :class:`~repro.algorithms.mcf_ltc.MCFLTCSolver` — the paper's Algorithm 1,
  a minimum-cost-flow batch algorithm with a 7.5 approximation ratio.
* :class:`~repro.algorithms.baselines.BaseOffSolver` — the paper's ``Base-off``
  baseline (greedy by scarcity of remaining nearby workers).
* :class:`~repro.algorithms.exact.ExactSolver` — exhaustive search for tiny
  instances, used to measure empirical approximation ratios in tests.

Online (workers arrive one by one; assignments are immediate and final):

* :class:`~repro.algorithms.laf.LAFSolver` — Largest Acc First (Algorithm 2).
* :class:`~repro.algorithms.aam.AAMSolver` — Average And Max (Algorithm 3).
* :class:`~repro.algorithms.baselines.RandomOnlineSolver` — the ``Random``
  baseline.

All solvers return a :class:`~repro.algorithms.base.SolveResult`, are
constructed declaratively from a :class:`~repro.algorithms.spec.SolverSpec`
through :func:`~repro.algorithms.registry.build_solver` (or by bare name via
:func:`~repro.algorithms.registry.get_solver`), and can be driven
incrementally through the :class:`~repro.core.session.Session` protocol via
:meth:`~repro.algorithms.base.Solver.open_session`.
"""

from repro.algorithms.base import OfflineSolver, OnlineSolver, SolveResult, Solver
from repro.algorithms.bounds import (
    latency_lower_bound,
    latency_upper_bound,
    mcnaughton_latency,
    mcnaughton_schedule,
)
from repro.algorithms.mcf_ltc import MCFLTCSolver
from repro.algorithms.laf import LAFSolver
from repro.algorithms.aam import AAMSolver
from repro.algorithms.baselines import BaseOffSolver, RandomOnlineSolver
from repro.algorithms.exact import ExactSolver
from repro.algorithms.session import OnlineSolverSession, ReplaySession, open_session
from repro.algorithms.spec import SolverSpec, SolverSpecLike
from repro.algorithms.registry import (
    available_solvers,
    build_solver,
    get_solver,
    register_solver,
    solver_entry,
    DEFAULT_SOLVER_NAMES,
    SolverCapabilities,
    SolverEntry,
)

__all__ = [
    "Solver",
    "OfflineSolver",
    "OnlineSolver",
    "SolveResult",
    "SolverSpec",
    "SolverSpecLike",
    "SolverCapabilities",
    "SolverEntry",
    "OnlineSolverSession",
    "ReplaySession",
    "open_session",
    "latency_lower_bound",
    "latency_upper_bound",
    "mcnaughton_latency",
    "mcnaughton_schedule",
    "MCFLTCSolver",
    "LAFSolver",
    "AAMSolver",
    "BaseOffSolver",
    "RandomOnlineSolver",
    "ExactSolver",
    "available_solvers",
    "build_solver",
    "get_solver",
    "register_solver",
    "solver_entry",
    "DEFAULT_SOLVER_NAMES",
]
