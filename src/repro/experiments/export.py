"""Exporting experiment results to CSV and JSON.

The text tables of :mod:`repro.experiments.report` are what EXPERIMENTS.md
embeds; downstream analysis (plotting the figures, statistical comparison
across runs) is easier from machine-readable files.  These helpers write the
raw per-run records and the aggregated per-panel series.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Sequence, Union

from repro.simulation.results import FIGURE_METRICS, ResultTable

PathLike = Union[str, Path]


def write_records_csv(table: ResultTable, path: PathLike) -> Path:
    """Write one CSV row per individual measured run."""
    path = Path(path)
    rows = table.to_rows()
    if not rows:
        raise ValueError("cannot export an empty result table")
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)
    return path


def write_series_csv(
    table: ResultTable,
    path: PathLike,
    metrics: Sequence[str] = FIGURE_METRICS,
) -> Path:
    """Write the aggregated (mean) series, one row per (algorithm, sweep value)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fieldnames = ["experiment_id", "algorithm", table.sweep_parameter] + list(metrics)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        series_by_metric = {metric: table.mean_series(metric) for metric in metrics}
        for algorithm in table.algorithms():
            for sweep_value in table.sweep_values():
                row: Dict[str, object] = {
                    "experiment_id": table.experiment_id,
                    "algorithm": algorithm,
                    table.sweep_parameter: sweep_value,
                }
                for metric in metrics:
                    points = dict(series_by_metric[metric].get(algorithm, []))
                    if sweep_value in points:
                        row[metric] = points[sweep_value]
                writer.writerow(row)
    return path


def export_json(
    table: ResultTable,
    path: PathLike,
    metrics: Sequence[str] = FIGURE_METRICS,
) -> Path:
    """Write a JSON document with both the raw records and the mean series."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = {
        "experiment_id": table.experiment_id,
        "sweep_parameter": table.sweep_parameter,
        "records": table.to_rows(),
        "series": {
            metric: {
                algorithm: [[value, mean] for value, mean in points]
                for algorithm, points in table.mean_series(metric).items()
            }
            for metric in metrics
        },
        "completion_rate": table.completion_rate(),
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True))
    return path
