"""Analysis utilities layered on top of the core library.

Two groups of helpers live here:

* :mod:`repro.analysis.instance_stats` — descriptive statistics of an LTC
  instance (eligible workers per task, candidate tasks per worker, contention
  and feasibility margins).  These explain *why* an algorithm behaves the way
  it does on a workload and are used by the examples and EXPERIMENTS.md
  discussion.
* :mod:`repro.analysis.ratios` — empirical approximation / competitive ratios
  against the exact solver (tiny instances) or against the Theorem 2 lower
  bound (any instance), supporting the paper's theoretical claims with
  measurements.
"""

from repro.analysis.instance_stats import InstanceStats, compute_instance_stats
from repro.analysis.ratios import (
    RatioReport,
    empirical_ratio_to_lower_bound,
    empirical_ratios_vs_exact,
)

__all__ = [
    "InstanceStats",
    "compute_instance_stats",
    "RatioReport",
    "empirical_ratio_to_lower_bound",
    "empirical_ratios_vs_exact",
]
