"""Regenerates Fig. 4b/4f/4j of the paper: latency / runtime / memory vs very large task sets (scalability).

The benchmark times the full regeneration (workload generation plus all five
algorithms across the sweep) and writes the rendered series to
``benchmarks/results/fig4_scalability.txt``.
"""

import pytest


@pytest.mark.benchmark(group="fig4_scalability")
def test_regenerate_fig4_scalability(benchmark, figure_runner):
    table = benchmark.pedantic(
        lambda: figure_runner("fig4_scalability"), rounds=1, iterations=1
    )
    assert len(table) > 0
    assert table.completion_rate() == 1.0
