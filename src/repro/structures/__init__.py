"""Small data-structure substrate shared by the algorithms.

The paper's pseudo-code keeps, for every worker, a heap ``Q`` bounded by the
worker's capacity that holds the best candidate tasks (Algorithms 1-3).  The
:class:`TopKHeap` here is that structure.  The :class:`IndexedMinHeap` is a
classic decrease-key priority queue used by the ``Base-off`` baseline to keep
tasks ordered by how many nearby workers remain, and :class:`RunningStats`
aggregates repeated experiment measurements.
"""

from repro.structures.topk import TopKHeap
from repro.structures.indexed_heap import IndexedMinHeap
from repro.structures.stats import RunningStats

__all__ = ["TopKHeap", "IndexedMinHeap", "RunningStats"]
