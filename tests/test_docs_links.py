"""Markdown link check over README.md and docs/ (the CI docs gate).

Every relative link in the prose docs must point at a file that exists in
the repository, and every documented module path under ``repro.`` must be
importable from ``src/``.  External (http/https/mailto) links are not
fetched — this is a fast, deterministic, offline check.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("**/*.md")]
)

# [text](target) markdown links, excluding images' leading "!" (images are
# checked the same way, so include them via the optional bang).
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")


def _relative_links(path: Path):
    text = path.read_text(encoding="utf-8")
    # Strip fenced code blocks: code samples may contain bracketed text
    # that is not a link.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target


def test_docs_exist():
    assert (REPO_ROOT / "docs" / "index.md").is_file()
    assert (REPO_ROOT / "docs" / "architecture.md").is_file()
    assert (REPO_ROOT / "docs" / "flow_kernel.md").is_file()
    assert (REPO_ROOT / "docs" / "candidates.md").is_file()
    assert (REPO_ROOT / "docs" / "sessions.md").is_file()
    assert (REPO_ROOT / "docs" / "dispatch.md").is_file()
    assert (REPO_ROOT / "docs" / "benchmarks.md").is_file()
    # README + index + the six subsystem docs, all in the link matrix.
    assert len(DOC_FILES) >= 8


def test_dispatch_doc_covers_fault_tolerance():
    """The fault-tolerance contract is documented where users will look."""
    text = (REPO_ROOT / "docs" / "dispatch.md").read_text(encoding="utf-8")
    assert "## Fault tolerance" in text
    for term in ("fail-fast", "restart", "quarantine", "JournalReplayError",
                 "bench_resilience.py", "BENCH_resilience.json"):
        assert term in text, f"dispatch.md fault-tolerance docs lost {term!r}"
    index = (REPO_ROOT / "docs" / "index.md").read_text(encoding="utf-8")
    assert "RecoveryPolicy" in index
    assert "BENCH_resilience.json" in index


def test_dispatch_doc_covers_the_process_executor():
    """The executor comparison and the process crash contract are documented."""
    text = (REPO_ROOT / "docs" / "dispatch.md").read_text(encoding="utf-8")
    assert "## Executors" in text
    for term in (
        "`process`",
        "crash domain",
        "REPRO_SHARD_MP_CONTEXT",
        "spawn",
        "shared-memory snapshots",
        "repro.service.sharding.shm",
        "worker_traceback",
        "ShardProcessDied",
        "test_service_shm.py",
    ):
        assert term in text, f"dispatch.md process-executor docs lost {term!r}"
    bench = (REPO_ROOT / "docs" / "benchmarks.md").read_text(encoding="utf-8")
    assert "process" in bench


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: str(p.relative_to(REPO_ROOT)))
def test_relative_links_resolve(doc):
    broken = []
    for target in _relative_links(doc):
        resolved = (doc.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            broken.append(target)
    assert broken == [], f"broken relative links in {doc.name}: {broken}"


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: str(p.relative_to(REPO_ROOT)))
def test_documented_module_paths_import(doc):
    """Module dotted paths mentioned in docs must actually exist."""
    import importlib

    text = doc.read_text(encoding="utf-8")
    modules = set(re.findall(r"`(repro(?:\.[a-z_0-9]+)+)`", text))
    missing = []
    for dotted in sorted(modules):
        parts = dotted.split(".")
        # Try the longest importable prefix, then getattr the rest — the
        # docs also name classes/functions as dotted paths.
        for cut in range(len(parts), 0, -1):
            try:
                obj = importlib.import_module(".".join(parts[:cut]))
            except ImportError:
                continue
            try:
                for attr in parts[cut:]:
                    obj = getattr(obj, attr)
            except AttributeError:
                missing.append(dotted)
            break
        else:
            missing.append(dotted)
    assert missing == [], f"{doc.name} mentions non-existent paths: {missing}"
